#include "daemon/controller.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>

#include "acct/event_log.hpp"  // acct::crc32
#include "apps/app_model.hpp"
#include "apps/catalog.hpp"
#include "daemon/replication.hpp"
#include "daemon/snapshot.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace perq::daemon {

namespace {
/// Ticks advance by one control interval; a frame claiming a tick this far
/// beyond everything seen so far is a corrupted integer, not a fast clock.
constexpr std::uint64_t kMaxTickJump = 1024;
/// Replication batch ceiling: the batch plus the ReplTick envelope must fit
/// one frame. A batch that outgrows this falls back to a full ReplSnapshot
/// for that decide (correct, just heavier).
constexpr std::size_t kMaxReplBatchBytes = proto::kMaxFrameBytes - 64;
}  // namespace

PerqController::PerqController(std::unique_ptr<net::Listener> listener,
                               core::PerqPolicy& policy, ControllerConfig cfg)
    : listener_(std::move(listener)),
      policy_(policy),
      cfg_(std::move(cfg)),
      reactor_(std::max<std::size_t>(1, cfg_.shards), cfg_.reactor_backend) {
  PERQ_REQUIRE(listener_ != nullptr, "controller needs a listener");
  PERQ_REQUIRE(cfg_.stale_after_ticks >= 1, "stale_after_ticks must be >= 1");
  standby_ = cfg_.standby;
  cfg_.shards = std::max<std::size_t>(1, cfg_.shards);
  frame_pools_.resize(cfg_.shards);
  shard_order_.resize(cfg_.shards);
  reactor_.add(listener_->fd(), 0);  // no-op for loopback (fd -1)
}

ThreadPool& PerqController::pool() {
  return cfg_.pool != nullptr ? *cfg_.pool : ThreadPool::shared();
}

PerqController::~PerqController() = default;

void PerqController::attach_arbiter(std::unique_ptr<net::Connection> conn,
                                    std::uint32_t domain_id,
                                    std::uint32_t domain_count,
                                    DomainAttachment att) {
  PERQ_REQUIRE(conn != nullptr, "arbiter attachment needs a connection");
  PERQ_REQUIRE(domain_count >= 1 && domain_id < domain_count,
               "domain id out of range");
  arbiter_conn_ = std::move(conn);
  domain_id_ = domain_id;
  domain_count_ = domain_count;
  attachment_ = std::move(att);
  arbiter_reg_fd_ = arbiter_conn_->fd();
  reactor_.add(arbiter_reg_fd_, 0);
}

void PerqController::reattach_arbiter(std::unique_ptr<net::Connection> conn,
                                      std::uint32_t domain_id,
                                      std::uint32_t domain_count,
                                      DomainAttachment att) {
  PERQ_REQUIRE(arbiter_conn_ != nullptr, "reattach without an arbiter");
  // Tell the old parent this slot is *leaving*, not crashing: it must
  // release the grant back to its pool instead of fencing it, or the
  // subtree's watts would be spoken for in two places at once.
  if (arbiter_conn_->open() && any_tick_seen_) {
    proto::DomainReport leaving;
    leaving.domain_id = domain_id_;
    leaving.domain_count = domain_count_;
    leaving.tick = current_tick_;
    leaving.controller_epoch = epoch_;
    leaving.flags = proto::kDomainLeaving;
    leaving.tree_path = attachment_.tree_path;
    arbiter_conn_->send(leaving);
  }
  if (arbiter_reg_fd_ >= 0) reactor_.remove(arbiter_reg_fd_, 0);
  arbiter_conn_.reset();
  // Fence the old grant on this side too: the watts it named belong to the
  // old subtree's budget and must never be drawn under the new parent.
  if (any_grant_) {
    any_grant_ = false;
    granted_w_ = 0.0;
    grant_tick_ = 0;
    ++counters_.grants_fenced;
  }
  ++counters_.reparent_events;
  any_report_ = false;
  report_tick_ = 0;
  attach_arbiter(std::move(conn), domain_id, domain_count, std::move(att));
}

double PerqController::budget_scope_w() const {
  if (!domain_mode()) return have_hb_ ? hb_.budget_for_busy_w : 0.0;
  // Held grant while the arbiter is silent: the arbiter fences the same
  // value on its side, so both halves of the split agree on who owns what.
  if (any_grant_) return granted_w_;
  // Before the first grant: the static split. The default is the equal
  // split -- K controllers assuming budget/K each sums to exactly the
  // cluster budget, conservative and conservation-safe for the cold start.
  // Deeper placements override it with their composed share (a subtree of
  // share s split c ways assumes s/c each), which restores the same
  // sums-to-budget property across an arbitrary tree; the division is kept
  // for the default so flat deployments stay bit-identical.
  if (!have_hb_) return 0.0;
  if (attachment_.static_share > 0.0) {
    return hb_.budget_for_busy_w * attachment_.static_share;
  }
  return hb_.budget_for_busy_w / static_cast<double>(domain_count_);
}

void PerqController::pump_arbiter() {
  if (arbiter_conn_ == nullptr || !arbiter_conn_->open()) return;
  arbiter_inbox_.clear();
  arbiter_conn_->receive_into(arbiter_inbox_);
  for (const proto::Message& m : arbiter_inbox_) {
    const auto* g = std::get_if<proto::BudgetGrant>(&m);
    if (g == nullptr) {
      // Only grants flow controller-ward on this link.
      ++counters_.frames_corrupt;
      continue;
    }
    if (accept_grant(*g)) record_repl(m);
  }
  if (!arbiter_conn_->open()) {
    if (arbiter_conn_->corrupt()) ++counters_.frames_corrupt;
    reactor_.remove(arbiter_reg_fd_, 0);
    arbiter_reg_fd_ = -1;
  }
}

void PerqController::send_domain_report() {
  if (arbiter_conn_ == nullptr || !arbiter_conn_->open() || !have_hb_) return;
  if (any_report_ && report_tick_ >= current_tick_) return;

  const auto& spec = apps::node_power_spec();
  proto::DomainReport r;
  r.domain_id = domain_id_;
  r.domain_count = domain_count_;
  r.tick = current_tick_;
  r.cluster_budget_w = hb_.budget_for_busy_w;

  // Demand: fresh jobs need at least cap_min per node; held jobs' watts are
  // already physically committed, so they are part of the floor verbatim.
  double fresh_floor_w = 0.0;
  double held_w = 0.0;
  for (const auto& [id, shadow] : shadows_) {
    const double nodes = static_cast<double>(shadow.job.spec().nodes);
    r.busy_nodes += nodes;
    r.capacity_w += nodes * spec.tdp;
    ++r.jobs;
    if (shadow.last_tick == current_tick_) {
      fresh_floor_w += nodes * spec.cap_min;
    } else {
      const double cap = shadow.planned_cap_w > 0.0 ? shadow.planned_cap_w
                                                    : shadow.job.last_cap_w();
      held_w += nodes * cap;
    }
  }
  r.floor_w = fresh_floor_w + held_w;

  const core::DomainFeedback& fb = policy_.last_feedback();
  if (fb.valid) {
    r.committed_w = fb.committed_w + held_w;
    r.utility_per_w = fb.utility_per_w;
    r.achieved_ips = fb.achieved_ips;
    r.target_ips = fb.target_ips;
  }

  const core::RobustnessCounters c = counters();
  r.frames_dropped = c.frames_dropped;
  r.frames_corrupt = c.frames_corrupt;
  r.reconnect_attempts = c.reconnect_attempts;
  r.stale_transitions = c.stale_transitions;
  r.solver_fallbacks = c.solver_fallbacks;
  r.clamp_activations = c.clamp_activations;
  r.failsafe_activations = c.failsafe_activations;
  r.stale_epoch_frames = c.stale_epoch_frames;
  r.controller_epoch = epoch_;
  // Power-tree placement and tenant terms (all defaults in a flat
  // deployment, in which case the encoder emits a byte-identical v1 body).
  r.grants_fenced = c.grants_fenced;
  r.reparent_events = c.reparent_events;
  r.sla_floor_activations = c.sla_floor_activations;
  r.tree_path = attachment_.tree_path;
  r.sla_floor_w = attachment_.sla_floor_w;
  r.priority_weight = attachment_.priority_weight;
  r.share_weight = attachment_.static_share;

  arbiter_conn_->send(r);
  any_report_ = true;
  report_tick_ = current_tick_;
}

void PerqController::pump() {
  for (auto& conn : listener_->accept_new()) {
    Session s;
    s.conn = std::move(conn);
    s.reg_fd = s.conn->fd();
    s.shard = next_shard_;
    next_shard_ = (next_shard_ + 1) % cfg_.shards;
    reactor_.add(s.reg_fd, s.shard);
    // Epoch fencing handshake: every peer learns this controller's epoch
    // the moment it connects, so an agent that failed over to a newer
    // primary recognizes (and rejects) a deposed one it later redials.
    s.conn->send(proto::PromoteAnnounce{epoch_, current_tick_});
    sessions_.push_back(std::move(s));
  }
  // Drain first, ingest second: epoll readiness order is nondeterministic,
  // so arrival order must never shape the decision state. Every open
  // session's bytes land in its inbox (reused, so steady state is
  // allocation-free) -- one worker task per shard when sharded -- then
  // ingestion runs in canonical order below.
  drain_sessions();
  // Hellos first, in accept order: they only bind agent ids (and supersede
  // dead sessions keyed by that id), and must land before the id-ordered
  // pass so a just-connected agent sorts under its real id.
  for (auto& session : sessions_) {
    for (const proto::Message& m : session.inbox) {
      if (std::holds_alternative<proto::Hello>(m) && session.conn->open()) {
        ingest(session, m);
      }
    }
  }
  // Everything else in ascending agent-id order -- the canonical
  // (tick, node-id) processing order. Frames within one session stay FIFO
  // (per-connection ordering), which fixes the tick order per agent;
  // unbound sessions (no Hello yet) go last, in accept order. The order is
  // assembled from per-shard sorted batches merged through a reduction
  // tree -- identical to one global sort, whatever the shard count.
  build_ingest_order();
  for (const std::size_t idx : ingest_order_) {
    Session& session = sessions_[idx];
    for (const proto::Message& m : session.inbox) {
      if (std::holds_alternative<proto::Hello>(m)) continue;  // done above
      if (!session.conn->open()) break;  // closed mid-inbox (protocol violation)
      ingest(session, m);
    }
    session.inbox.clear();  // capacity survives for the next pump
  }
  // Reap closed sessions (includes those superseded by a rejoin Hello). A
  // connection killed by its FrameDecoder died to a corrupt byte stream,
  // not an orderly close -- account it before it disappears. The reactor
  // must forget the fd before the next wait(): the poll backend would spin
  // on POLLNVAL, and a recycled fd number would alias a new connection.
  for (const Session& s : sessions_) {
    if (!s.conn->open()) {
      if (s.conn->corrupt()) ++counters_.frames_corrupt;
      reactor_.remove(s.reg_fd, s.shard);
    }
  }
  std::erase_if(sessions_, [](const Session& s) { return !s.conn->open(); });
  pump_arbiter();
}

void PerqController::drain_sessions() {
  if (cfg_.shards == 1) {
    for (auto& session : sessions_) {
      if (!session.conn->open()) continue;
      session.conn->receive_into(session.inbox);
    }
    return;
  }
  // Partition session indices by shard (scratch reused across pumps), then
  // drain each shard's partition in its own task. Tasks touch disjoint
  // sessions and disjoint connections, so no state is shared; everything
  // order-dependent happens after the join, in canonical order.
  for (auto& members : shard_order_) members.clear();
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    shard_order_[sessions_[i].shard].push_back(i);
  }
  std::vector<std::future<void>> joins;
  joins.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    if (shard_order_[s].empty()) continue;
    joins.push_back(pool().submit([this, s] {
      for (const std::size_t idx : shard_order_[s]) {
        Session& session = sessions_[idx];
        if (!session.conn->open()) continue;
        session.conn->receive_into(session.inbox);
      }
    }));
  }
  for (auto& j : joins) j.get();
}

void PerqController::build_ingest_order() {
  // Canonical key, totalized by accept index so per-shard sorts and the
  // merge agree on every tie: helloed sessions first, ascending agent id,
  // accept order among equals -- exactly the stable_sort the single pump
  // used, so S=1 and S=N produce one and the same sequence.
  const auto less = [this](std::size_t a, std::size_t b) {
    const Session& sa = sessions_[a];
    const Session& sb = sessions_[b];
    if (sa.helloed != sb.helloed) return sa.helloed;
    if (sa.helloed && sa.agent_id != sb.agent_id) {
      return sa.agent_id < sb.agent_id;
    }
    return a < b;
  };
  if (cfg_.shards == 1) {
    ingest_order_.clear();
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      ingest_order_.push_back(i);
    }
    std::sort(ingest_order_.begin(), ingest_order_.end(), less);
    return;
  }
  // Per-shard batches (membership may have moved in the Hello pass: a
  // re-homed session sorts under its new shard, which only permutes batch
  // boundaries, never the merged order).
  for (auto& batch : shard_order_) batch.clear();
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    shard_order_[sessions_[i].shard].push_back(i);
  }
  for (auto& batch : shard_order_) std::sort(batch.begin(), batch.end(), less);
  // Reduction tree: pairwise-merge sorted batches until one remains. The
  // key is a total order, so the tree's shape cannot influence the result.
  std::size_t width = shard_order_.size();
  merge_scratch_.resize(shard_order_.size());
  auto* level = &shard_order_;
  auto* next = &merge_scratch_;
  while (width > 1) {
    const std::size_t half = (width + 1) / 2;
    for (std::size_t p = 0; p < half; ++p) {
      auto& out = (*next)[p];
      out.clear();
      const std::size_t lhs = 2 * p;
      const std::size_t rhs = 2 * p + 1;
      if (rhs < width) {
        std::merge((*level)[lhs].begin(), (*level)[lhs].end(),
                   (*level)[rhs].begin(), (*level)[rhs].end(),
                   std::back_inserter(out), less);
      } else {
        out = (*level)[lhs];
      }
    }
    std::swap(level, next);
    width = half;
  }
  ingest_order_ = (*level)[0];
}

void PerqController::ingest(Session& session, const proto::Message& m) {
  session.any_message = true;
  if (const auto* hello = std::get_if<proto::Hello>(&m)) {
    // A rejoining agent supersedes its previous session: close the old
    // connection so the reaper collects it.
    for (Session& other : sessions_) {
      if (&other != &session && other.helloed &&
          other.agent_id == hello->agent_id) {
        other.conn->close();
      }
    }
    session.helloed = true;
    session.agent_id = hello->agent_id;
    // Re-home the session to its id-stable shard (accept order assigned a
    // provisional round-robin slot).
    const std::size_t home = hello->agent_id % cfg_.shards;
    if (home != session.shard) {
      reactor_.remove(session.reg_fd, session.shard);
      session.shard = home;
      reactor_.add(session.reg_fd, session.shard);
    }
    // The delta-vs-full resync decision lives in ingest_state so a standby
    // replaying this Hello tracks the same broadcast sequencing.
    record_repl(m);
    ingest_state(m);
    return;
  }
  if (std::holds_alternative<proto::Bye>(m)) {
    session.said_bye = true;
    session.conn->close();
    record_repl(m);
    return;
  }
  if (const auto* hb = std::get_if<proto::Heartbeat>(&m)) {
    if (standby_) return;  // pre-promotion: the replication stream owns state
    if (!ingest_state(m)) return;  // screened out (accounted inside)
    session.last_tick = std::max(session.last_tick, hb->tick);
    record_repl(m);
    return;
  }
  if (const auto* t = std::get_if<proto::Telemetry>(&m)) {
    if (standby_) return;
    if (!ingest_state(m)) return;
    session.last_tick = std::max(session.last_tick, t->tick);
    record_repl(m);
    return;
  }
  if (const auto* rt = std::get_if<proto::ReplTick>(&m)) {
    // Replication stream frames are meaningful only on a standby; a primary
    // receiving one is talking to a confused peer.
    if (standby_) {
      apply_repl_tick(*rt);
    } else {
      session.conn->close();
    }
    return;
  }
  if (const auto* rs = std::get_if<proto::ReplSnapshot>(&m)) {
    if (standby_) {
      apply_repl_snapshot(*rs);
    } else {
      session.conn->close();
    }
    return;
  }
  if (std::holds_alternative<proto::PromoteAnnounce>(m)) {
    // Controllers announce epochs; they never act on a peer's announce
    // (agents do the fencing). Harmless -- ignore.
    return;
  }
  // CapPlan from an agent is a protocol violation; drop the peer.
  session.conn->close();
}

bool PerqController::ingest_state(const proto::Message& m) {
  if (const auto* hello = std::get_if<proto::Hello>(&m)) {
    // Resync decision: a (re)joiner that still holds the canonical image we
    // diff against (it reports the tick of its applied base plan) can keep
    // riding deltas; anyone else forces the next broadcast to a full plan.
    const bool base_matches = have_base_plan_ && hello->has_plan != 0 &&
                              hello->last_plan_tick == base_plan_.tick;
    if (!base_matches) force_full_ = true;
    return true;
  }
  if (std::holds_alternative<proto::Bye>(m)) return true;  // leave: no state
  if (const auto* hb = std::get_if<proto::Heartbeat>(&m)) {
    // Sanity screen: a heartbeat drives the budget row the policy optimizes
    // over, so a bit-flipped one (non-finite watts, busy > total, a budget
    // no cluster of this size could have, a tick from the far future) must
    // not poison the decision state. Drop it and account the corruption.
    const double max_cluster_w =
        static_cast<double>(hb->total_nodes) * apps::node_power_spec().tdp;
    const bool insane =
        !std::isfinite(hb->budget_total_w) ||
        !std::isfinite(hb->budget_for_busy_w) || !std::isfinite(hb->dt_s) ||
        !std::isfinite(hb->now_s) || !std::isfinite(hb->total_nodes) ||
        hb->budget_total_w < 0.0 || hb->budget_for_busy_w < 0.0 ||
        hb->budget_for_busy_w > hb->budget_total_w * (1.0 + 1e-9) + 1e-6 ||
        hb->budget_total_w > max_cluster_w * (1.0 + 1e-9) + 1e-6 ||
        !(hb->total_nodes > 0.0) || !(hb->dt_s > 0.0) ||
        (any_tick_seen_ && hb->tick > current_tick_ + kMaxTickJump);
    if (insane) {
      ++counters_.frames_corrupt;
      return false;
    }
    if (!any_tick_seen_ || hb->tick >= current_tick_) {
      current_tick_ = hb->tick;
      any_tick_seen_ = true;
      hb_ = *hb;
      have_hb_ = true;
    }
    // Agents publish telemetry before the heartbeat and transports deliver
    // in order, so this heartbeat certifies every tick-t frame from this
    // agent already arrived. A shadow this agent feeds that went unreported
    // is no longer running at the plant -- typically a job whose final was
    // lost to a crash before the agent rejoined. Retire it.
    for (auto it = shadows_.begin(); it != shadows_.end();) {
      if (it->second.feeder == hb->agent_id && it->second.last_tick < hb->tick) {
        policy_.on_job_finished(it->second.job);
        it = shadows_.erase(it);
      } else {
        ++it;
      }
    }
    return true;
  }
  if (const auto* t = std::get_if<proto::Telemetry>(&m)) {
    return on_telemetry(*t);
  }
  if (const auto* g = std::get_if<proto::BudgetGrant>(&m)) {
    return accept_grant(*g);
  }
  return false;
}

bool PerqController::on_telemetry(const proto::Telemetry& t) {
  // Sanity screen before any state is touched: telemetry feeds the shadow
  // jobs and through them the estimators, so one bit-flipped frame (NaN
  // progress, negative IPS, a cap beyond TDP, a far-future tick) could
  // poison every later decision. Drop the frame and account the corruption.
  const auto& spec = apps::node_power_spec();
  const bool insane =
      !std::isfinite(t.progress_s) || !std::isfinite(t.min_perf) ||
      !std::isfinite(t.ips) || !std::isfinite(t.cap_w) ||
      !std::isfinite(t.runtime_ref_s) || t.progress_s < 0.0 || t.ips < 0.0 ||
      t.cap_w < 0.0 || t.cap_w > spec.tdp * (1.0 + 1e-9) + 1e-6 ||
      (any_tick_seen_ && t.tick > current_tick_ + kMaxTickJump);
  if (insane) {
    ++counters_.frames_corrupt;
    return false;
  }

  if (!any_tick_seen_ || t.tick > current_tick_) {
    current_tick_ = t.tick;
    any_tick_seen_ = true;
  }

  const int id = t.job_id;
  if (t.flags & proto::kTelemetryFinal) {
    const auto it = shadows_.find(id);
    if (it != shadows_.end()) {
      policy_.on_job_finished(it->second.job);
      shadows_.erase(it);
    }
    return true;
  }

  const auto& catalog = apps::ecp_catalog();
  if (t.app_index >= catalog.size() || t.nodes == 0 || !(t.runtime_ref_s > 0.0)) {
    ++counters_.frames_corrupt;
    // Semantically invalid; the tick still counted (the frame is well-formed
    // enough to prove the agent is alive), so the caller records it and a
    // replay re-rejects it identically.
    return true;
  }

  auto it = shadows_.find(id);
  if (it == shadows_.end()) {
    trace::JobSpec spec;
    spec.id = id;
    spec.nodes = t.nodes;
    spec.runtime_ref_s = t.runtime_ref_s;
    spec.app_index = t.app_index;
    Shadow shadow{sched::Job(spec, &catalog[spec.app_index]), 0, 0, 0, 0.0, 0.0};
    it = shadows_.emplace(id, std::move(shadow)).first;
    policy_.on_job_started(it->second.job);
  }
  Shadow& shadow = it->second;
  shadow.job.sync_runtime_state(t.progress_s, t.min_perf, t.ips, t.cap_w);
  shadow.last_tick = t.tick;
  shadow.seq = t.seq;
  shadow.feeder = t.agent_id;
  return true;
}

bool PerqController::accept_grant(const proto::BudgetGrant& g) {
  // Parent fence: a grant must come from the arbiter this controller is
  // attached under *now*. After a re-parent, frames still in flight from
  // the old parent (whose tree_path differs) are fenced, not applied --
  // drawing them would double-spend watts the old subtree already
  // reclaimed. Flat deployments compare empty against empty.
  if (g.tree_path != attachment_.parent_path) {
    ++counters_.grants_fenced;
    return false;
  }
  // Sanity screen, same spirit as the heartbeat screen: the grant becomes
  // the budget row, so a bit-flipped one must not starve or over-provision
  // the domain. The cluster budget in the grant cross-checks the value.
  const bool insane =
      !std::isfinite(g.grant_w) || g.grant_w < 0.0 ||
      !std::isfinite(g.cluster_budget_w) ||
      g.grant_w > g.cluster_budget_w * (1.0 + 1e-9) + 1e-6 ||
      (have_hb_ && g.grant_w > hb_.budget_total_w * (1.0 + 1e-9) + 1e-6) ||
      (any_tick_seen_ && g.tick > current_tick_ + kMaxTickJump) ||
      g.domain_id != domain_id_;
  if (insane) {
    ++counters_.frames_corrupt;
    return false;
  }
  if (!any_grant_ || g.tick >= grant_tick_) {
    any_grant_ = true;
    granted_w_ = g.grant_w;
    grant_tick_ = g.tick;
  }
  return true;
}

bool PerqController::session_stale(const Session& s) const {
  if (!any_tick_seen_) return false;
  return s.last_tick + cfg_.stale_after_ticks < current_tick_;
}

bool PerqController::tick_pending() const {
  if (!any_tick_seen_ || !have_hb_) return false;
  return !any_decision_ || current_tick_ > last_decided_tick_;
}

bool PerqController::ready() const {
  if (!tick_pending()) return false;
  for (const Session& s : sessions_) {
    if (!s.conn->open() || s.said_bye || session_stale(s)) continue;
    if (s.last_tick < current_tick_) return false;
  }
  return true;
}

const proto::CapPlan& PerqController::decide() {
  PERQ_REQUIRE(tick_pending(), "decide without a pending tick");
  const std::uint64_t tick = current_tick_;
  // Hier mode: the budget this controller may spend is its grant, not the
  // heartbeat's cluster figure. budget_scope_w() resolves to the cluster
  // budget in monolithic mode, so everything below is scope-agnostic.
  const double scope_w = budget_scope_w();

  // Partition shadows into fresh (telemetry for this tick arrived) and held
  // (agent silent: cap frozen at the last plan, watts fenced off).
  fresh_running_.clear();
  std::vector<Shadow*> fresh;
  double held_w = 0.0;
  std::size_t held_jobs = 0;
  for (auto& [id, shadow] : shadows_) {
    if (shadow.last_tick == tick) {
      fresh.push_back(&shadow);
    } else {
      const double cap =
          shadow.planned_cap_w > 0.0 ? shadow.planned_cap_w : shadow.job.last_cap_w();
      held_w += cap * static_cast<double>(shadow.job.spec().nodes);
      ++held_jobs;
    }
  }
  std::sort(fresh.begin(), fresh.end(), [](const Shadow* a, const Shadow* b) {
    return a->seq < b->seq;
  });

  plan_ = proto::CapPlan{};
  plan_.tick = tick;

  // Feasibility guard: the held watts can squeeze the remaining row below
  // the cap_min floor of the fresh jobs (many agents silent while packed
  // tight). There is no in-budget allocation then, so degrade to holding
  // the fresh jobs too -- previous caps were within budget, so holding all
  // of them is as well (idle floor <= cap_min covers freed/started churn).
  double fresh_floor_w = 0.0;
  for (const Shadow* s : fresh) {
    fresh_floor_w += apps::node_power_spec().cap_min *
                     static_cast<double>(s->job.spec().nodes);
  }
  const bool hold_all = fresh_floor_w > scope_w - held_w + 1e-6;
  if (hold_all) {
    for (Shadow* s : fresh) {
      const double cap =
          s->planned_cap_w > 0.0 ? s->planned_cap_w : s->job.last_cap_w();
      s->planned_cap_w = cap;
      held_w += cap * static_cast<double>(s->job.spec().nodes);
      ++held_jobs;
    }
    fresh.clear();
  }

  if (!fresh.empty()) {
    for (Shadow* s : fresh) fresh_running_.push_back(&s->job);
    policy::PolicyContext ctx;
    ctx.running = &fresh_running_;
    ctx.budget_total_w = hb_.budget_total_w;
    ctx.budget_for_busy_w = scope_w - held_w;
    ctx.total_nodes = hb_.total_nodes;
    ctx.dt_s = hb_.dt_s;
    ctx.now_s = hb_.now_s;
    if (domain_mode() && domain_count_ > 1) {
      // Re-base the fairness floor on the domain's share: equal split of
      // the spendable grant over the fresh jobs' nodes. Single-domain
      // deployments keep fair_cap_w = 0 (the static cluster split), which
      // is part of the K=1 bit-identity contract.
      double fresh_nodes = 0.0;
      for (const Shadow* s : fresh) {
        fresh_nodes += static_cast<double>(s->job.spec().nodes);
      }
      const auto& pspec = apps::node_power_spec();
      if (fresh_nodes > 0.0) {
        ctx.fair_cap_w = std::clamp((scope_w - held_w) / fresh_nodes,
                                    pspec.cap_min, pspec.tdp);
      }
      ctx.domain_id = domain_id_;
      ctx.domain_count = domain_count_;
    }
    const std::vector<double> caps = policy_.allocate(ctx);
    PERQ_ASSERT(caps.size() == fresh.size(), "policy returned wrong cap count");
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      Shadow& s = *fresh[i];
      s.planned_cap_w = caps[i];
      s.planned_target_ips = policy_.target_ips(s.job.spec().id);
      plan_.entries.push_back(
          {s.job.spec().id, s.planned_cap_w, s.planned_target_ips, 0});
    }
  }
  for (auto& [id, shadow] : shadows_) {
    if (!hold_all && shadow.last_tick == tick) continue;
    const double cap = shadow.planned_cap_w > 0.0 ? shadow.planned_cap_w
                                                  : shadow.job.last_cap_w();
    plan_.entries.push_back({id, cap, shadow.planned_target_ips, 1});
  }

  clamp_plan();
  broadcast_plan();

  stats_.tick = tick;
  stats_.fresh_jobs = fresh.size();
  stats_.held_jobs = held_jobs;
  stats_.held_w = held_w;
  stats_.budget_row_w = scope_w - held_w;
  stats_.granted_w = domain_mode() ? scope_w : 0.0;
  stats_.grant_fresh = domain_mode() && any_grant_ && grant_tick_ >= tick;
  stats_.stale_agents = 0;
  for (Session& s : sessions_) {
    if (!s.conn->open() || s.said_bye) continue;
    if (session_stale(s)) {
      ++stats_.stale_agents;
      if (!s.counted_stale) {
        s.counted_stale = true;
        ++counters_.stale_transitions;
      }
    } else {
      s.counted_stale = false;  // rejoined in place; may go stale again
    }
  }

  last_decided_tick_ = tick;
  any_decision_ = true;
  pending_timer_armed_ = false;

  // Replicate this decide's canonical inputs before anything else can
  // happen: the batch plus the plan crc is everything a standby needs to
  // reproduce (and verify) the decision just made.
  if (replicating() && !replaying_) emit_repl_tick(tick);

  if (!cfg_.snapshot_path.empty() && cfg_.snapshot_every_ticks > 0 &&
      tick % cfg_.snapshot_every_ticks == 0 && !replaying_) {
    write_snapshot();
  }
  return plan_;
}

bool PerqController::service() {
  pump();
  // A standby decides only through the replication stream (inside pump's
  // apply of a ReplTick), never off its own clock or grace timer.
  if (standby_) return false;
  if (!tick_pending()) return false;
  // Hier mode: demand goes out as soon as the tick is visible; the arbiter
  // answers with a grant, and a decision ideally waits for it. The grace
  // deadline below still fires without one (arbiter down or partitioned) --
  // the controller then decides over its held grant, which the arbiter
  // fences symmetrically.
  if (domain_mode()) send_domain_report();
  const bool grant_ok =
      !domain_mode() || (any_grant_ && grant_tick_ >= current_tick_);
  if (ready() && grant_ok) {
    decide();
    return true;
  }
  const auto now = std::chrono::steady_clock::now();
  if (!pending_timer_armed_ || pending_tick_ != current_tick_) {
    pending_timer_armed_ = true;
    pending_tick_ = current_tick_;
    pending_since_ = now;
    return false;
  }
  if (now - pending_since_ >=
      std::chrono::milliseconds(cfg_.decide_grace_ms)) {
    decide();
    return true;
  }
  return false;
}

void PerqController::broadcast_plan() {
  // Delta-or-full decision. The canonical (job-id-sorted) image of the
  // outgoing plan is what in-sync agents hold as their patch base, so the
  // diff runs between consecutive canonical images. Full plans go out on
  // the first decision, whenever an agent (re)joined since the last
  // broadcast (it has no base), on the periodic resync beat, and whenever
  // the delta would not actually be smaller on the wire.
  sorted_plan_ = plan_;
  proto::canonicalize(sorted_plan_);
  // Replication integrity: crc32 of the canonical plan encoding travels in
  // the ReplTick so the standby can prove its replayed decision bit-equal.
  // Gated so the non-replicated data plane never pays the extra encode.
  if (standby_ || standby_conn_ != nullptr || repl_log_ != nullptr) {
    crc_msg_ = sorted_plan_;
    proto::encode_into(crc_msg_, repl_scratch_);
    last_plan_crc_ = acct::crc32(repl_scratch_.data(), repl_scratch_.size());
  }
  bool send_delta = false;
  if (cfg_.delta_broadcast && have_base_plan_ && !force_full_ &&
      (cfg_.full_plan_every_ticks == 0 ||
       decisions_since_full_ + 1 < cfg_.full_plan_every_ticks)) {
    proto::make_delta(base_plan_, sorted_plan_, delta_);
    // Wire economics, exact body sizes: delta header 24B + 22B/op vs full
    // header 12B + 21B/entry.
    const std::size_t delta_bytes = 24 + 22 * delta_.ops.size();
    const std::size_t full_bytes = 12 + 21 * plan_.entries.size();
    send_delta = delta_bytes < full_bytes;
  }

  // Serialize-once, per shard: each shard's worker encodes the broadcast
  // exactly once from its own frame pool; every connection of the shard
  // queues a reference to the same bytes (TCP writev's them out with
  // partial-write resume, loopback decodes the bit-exact frame back into a
  // message). Pool slots recycle once the last connection finishes
  // sending, so steady state never allocates.
  const auto broadcast_shard = [this, send_delta](std::size_t shard) {
    auto buf = frame_pools_[shard].acquire();
    if (send_delta) {
      proto::encode_into(delta_, *buf);
    } else {
      proto::encode_into(plan_, *buf);
    }
    const net::SharedFrame frame = net::FramePool::freeze(buf);
    for (Session& s : sessions_) {
      if (s.shard == shard && s.conn->open() && !s.said_bye) {
        s.conn->send_frame(frame);
      }
    }
  };
  if (standby_) {
    // A standby replays decide() for state continuity but serves no agents:
    // skip the send, keep every piece of delta bookkeeping below identical
    // to the primary's so behavior after promote() matches it bit-exactly.
  } else if (cfg_.shards == 1) {
    broadcast_shard(0);
  } else {
    std::vector<std::future<void>> joins;
    joins.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      joins.push_back(pool().submit([&broadcast_shard, s] { broadcast_shard(s); }));
    }
    for (auto& j : joins) j.get();
  }

  std::swap(base_plan_, sorted_plan_);
  have_base_plan_ = true;
  if (send_delta) {
    ++decisions_since_full_;
    ++delta_broadcasts_;
  } else {
    decisions_since_full_ = 0;
    force_full_ = false;
    ++full_broadcasts_;
  }
}

bool clamp_cap_plan(proto::CapPlan& plan, double budget_for_busy_w,
                    const std::map<int, double>& nodes_by_job) {
  const auto& spec = apps::node_power_spec();
  bool violated = false;

  double committed_w = 0.0;
  double floor_w = 0.0;
  for (auto& e : plan.entries) {
    if (!std::isfinite(e.cap_w) || e.cap_w < spec.cap_min || e.cap_w > spec.tdp) {
      violated = true;
      e.cap_w = std::isfinite(e.cap_w)
                    ? std::clamp(e.cap_w, spec.cap_min, spec.tdp)
                    : spec.cap_min;
    }
    const auto it = nodes_by_job.find(e.job_id);
    const double nodes = it == nodes_by_job.end() ? 1.0 : it->second;
    committed_w += e.cap_w * nodes;
    floor_w += spec.cap_min * nodes;
  }

  if (committed_w > budget_for_busy_w + 1e-3) {
    violated = true;
    // Scale the head-room above the cap_min floor down uniformly; if even
    // the floor exceeds the budget there is no feasible plan and the floor
    // itself is the least-bad saturation.
    const double head = committed_w - floor_w;
    const double scale =
        head > 0.0
            ? std::clamp((budget_for_busy_w - floor_w) / head, 0.0, 1.0)
            : 0.0;
    for (auto& e : plan.entries) {
      e.cap_w = spec.cap_min + (e.cap_w - spec.cap_min) * scale;
    }
  }
  return violated;
}

void PerqController::clamp_plan() {
  // Defensive clamp, last line before broadcast (defense in depth: nothing
  // upstream should ever produce a violating plan -- enforce_budget and the
  // hold-all guard already guarantee feasibility). The checks are pure
  // comparisons so a healthy plan passes through bit-identical; only a plan
  // that would trip the plant's budget/box invariants is saturated, and each
  // such rescue is visible in clamp_activations.
  std::map<int, double> nodes_by_job;
  for (const auto& [id, shadow] : shadows_) {
    nodes_by_job[id] = static_cast<double>(shadow.job.spec().nodes);
  }
  // In hier mode the plan must fit the *grant*, not the cluster budget --
  // a domain spilling over its grant would break arbiter conservation even
  // if the cluster row still holds.
  const double budget = have_hb_ || (domain_mode() && any_grant_)
                            ? budget_scope_w()
                            : std::numeric_limits<double>::infinity();
  if (clamp_cap_plan(plan_, budget, nodes_by_job)) {
    ++counters_.clamp_activations;
    // Keep the shadows' planned caps in sync with what was actually sent,
    // so next tick's held-watts accounting reflects the clamped plan.
    for (const auto& e : plan_.entries) {
      const auto it = shadows_.find(e.job_id);
      if (it != shadows_.end()) it->second.planned_cap_w = e.cap_w;
    }
  }
}

std::vector<int> PerqController::fds() const {
  std::vector<int> fds;
  fds.push_back(listener_->fd());
  for (const Session& s : sessions_) fds.push_back(s.conn->fd());
  return fds;
}

void PerqController::write_snapshot() const {
  save_snapshot(cfg_.snapshot_path, state());
}

void PerqController::attach_standby(std::unique_ptr<net::Connection> conn) {
  PERQ_REQUIRE(!standby_, "a standby cannot replicate onward");
  PERQ_REQUIRE(conn != nullptr, "attach_standby needs a connection");
  standby_conn_ = std::move(conn);
  // Bootstrap: the very first thing on the stream is full state, so the
  // standby is decision-equivalent before the first ReplTick arrives.
  emit_repl_snapshot();
}

void PerqController::open_replication_log(const std::string& path) {
  PERQ_REQUIRE(repl_log_ == nullptr, "replication log already open");
  repl_log_ = std::make_unique<ReplicationLog>();
  // Replay the longest valid prefix into this controller through the same
  // apply path a streaming standby uses; `replaying_` suppresses
  // re-emission (the records are already in the log) and snapshot writes.
  replaying_ = true;
  repl_log_->open(path, [this](const std::uint8_t* data, std::size_t n) {
    proto::Message m;
    if (!proto::parse_frame_into(data, n, m)) {
      ++repl_rejected_;
      return;
    }
    if (const auto* rt = std::get_if<proto::ReplTick>(&m)) {
      apply_repl_tick(*rt);
    } else if (const auto* rs = std::get_if<proto::ReplSnapshot>(&m)) {
      apply_repl_snapshot(*rs);
    } else {
      ++repl_rejected_;
    }
  });
  replaying_ = false;
}

void PerqController::promote() {
  PERQ_REQUIRE(standby_, "promote() is only valid on a standby");
  standby_ = false;
  // Strictly above everything the old primary could ever have announced:
  // its own epoch is <= max(snapshot epoch, newest stream epoch).
  epoch_ = std::max(epoch_, repl_epoch_) + 1;
  // Reconnecting agents hold plan images served by the dead primary; their
  // Hellos renegotiate delta resumption, but until then the only safe
  // broadcast is a full plan.
  have_base_plan_ = false;
  force_full_ = true;
  decisions_since_full_ = 0;
  any_report_ = false;
  for (Session& s : sessions_) {
    if (!s.conn->open() || s.said_bye) continue;
    s.conn->send(proto::PromoteAnnounce{epoch_, current_tick_});
  }
}

void PerqController::record_repl(const proto::Message& m) {
  if (!replicating() || replaying_) return;
  proto::encode_into(m, repl_scratch_);
  if (repl_batch_.size() + repl_scratch_.size() > kMaxReplBatchBytes) {
    // This decide's inputs no longer fit one ReplTick; emit_repl_tick falls
    // back to a full ReplSnapshot, which subsumes the whole batch.
    repl_overflow_ = true;
    return;
  }
  repl_batch_.insert(repl_batch_.end(), repl_scratch_.begin(),
                     repl_scratch_.end());
}

void PerqController::emit_repl_tick(std::uint64_t tick) {
  if (repl_overflow_) {
    emit_repl_snapshot();
    return;
  }
  proto::ReplTick rt;
  rt.epoch = epoch_;
  rt.tick = tick;
  rt.plan_crc = last_plan_crc_;
  rt.batch = std::move(repl_batch_);
  proto::Message m(std::move(rt));
  if (standby_conn_ != nullptr && standby_conn_->open()) {
    standby_conn_->send(m);
  }
  if (repl_log_ != nullptr) {
    proto::encode_into(m, repl_scratch_);
    repl_log_->append(repl_scratch_.data() + 4, repl_scratch_.size() - 4);
  }
  // Reclaim the batch buffer's capacity for the next decide.
  repl_batch_ = std::move(std::get<proto::ReplTick>(m).batch);
  repl_batch_.clear();
  ++replicated_decides_;
  repl_last_tick_ = tick;
  ++decides_since_repl_snapshot_;
  if (cfg_.replicate_snapshot_every > 0 &&
      decides_since_repl_snapshot_ >= cfg_.replicate_snapshot_every) {
    emit_repl_snapshot();
  }
}

void PerqController::emit_repl_snapshot() {
  proto::Message m = proto::ReplSnapshot{epoch_, encode_snapshot(state())};
  if (standby_conn_ != nullptr && standby_conn_->open()) {
    standby_conn_->send(m);
  }
  if (repl_log_ != nullptr) {
    proto::encode_into(m, repl_scratch_);
    repl_log_->rewrite_with_snapshot(std::vector<std::uint8_t>(
        repl_scratch_.begin() + 4, repl_scratch_.end()));
  }
  decides_since_repl_snapshot_ = 0;
  repl_batch_.clear();
  repl_overflow_ = false;
}

void PerqController::apply_repl_tick(const proto::ReplTick& rt) {
  // All-or-nothing: every inner frame must parse before any is applied, so
  // a truncated or bit-flipped batch can never leave half a decide behind.
  repl_msgs_.clear();
  const std::uint8_t* p = rt.batch.data();
  std::size_t left = rt.batch.size();
  while (left > 0) {
    if (left < 4) {
      ++repl_rejected_;
      return;
    }
    const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
    if (len == 0 || len > proto::kMaxFrameBytes || len > left - 4) {
      ++repl_rejected_;
      return;
    }
    proto::Message m;
    if (!proto::parse_frame_into(p + 4, len, m)) {
      ++repl_rejected_;
      return;
    }
    repl_msgs_.push_back(std::move(m));
    p += 4 + len;
    left -= 4 + len;
  }
  for (const proto::Message& m : repl_msgs_) ingest_state(m);
  repl_epoch_ = std::max(repl_epoch_, rt.epoch);
  epoch_ = std::max(epoch_, rt.epoch);  // mirror the primary's epoch
  ++replicated_decides_;
  repl_last_tick_ = rt.tick;
  // A live standby with its own WAL persists the record it just applied,
  // making a promoted-then-crashed standby recoverable from disk too.
  if (standby_ && repl_log_ != nullptr && !replaying_) {
    proto::Message m{rt};
    proto::encode_into(m, repl_scratch_);
    repl_log_->append(repl_scratch_.data() + 4, repl_scratch_.size() - 4);
  }
  if (tick_pending()) {
    const bool was_replaying = replaying_;
    replaying_ = true;  // the replayed decide must not re-emit or snapshot
    decide();
    replaying_ = was_replaying;
    if (last_plan_crc_ != rt.plan_crc) ++repl_divergence_;
  }
}

void PerqController::apply_repl_snapshot(const proto::ReplSnapshot& rs) {
  std::string why;
  std::optional<ControllerState> s =
      decode_snapshot(rs.snapshot.data(), rs.snapshot.size(), &why);
  if (!s.has_value()) {
    ++repl_rejected_;
    return;
  }
  restore(*s);
  repl_epoch_ = std::max(repl_epoch_, rs.epoch);
  epoch_ = std::max(epoch_, rs.epoch);
  ++replicated_decides_;
  repl_last_tick_ = s->last_decided_tick;
  if (standby_ && repl_log_ != nullptr && !replaying_) {
    proto::Message m{rs};
    proto::encode_into(m, repl_scratch_);
    repl_log_->rewrite_with_snapshot(std::vector<std::uint8_t>(
        repl_scratch_.begin() + 4, repl_scratch_.end()));
  }
}

ControllerState PerqController::state() const {
  ControllerState s;
  s.current_tick = current_tick_;
  s.last_decided_tick = last_decided_tick_;
  s.any_tick_seen = any_tick_seen_ ? 1 : 0;
  s.any_decision = any_decision_ ? 1 : 0;
  s.policy = policy_.snapshot();
  s.shadows.reserve(shadows_.size());
  for (const auto& [id, shadow] : shadows_) {
    ShadowRecord r;
    r.spec = shadow.job.spec();
    r.progress_s = shadow.job.progress_s();
    r.last_min_perf = shadow.job.last_min_perf();
    r.last_job_ips = shadow.job.last_job_ips();
    r.last_cap_w = shadow.job.last_cap_w();
    r.last_tick = shadow.last_tick;
    r.seq = shadow.seq;
    r.feeder = shadow.feeder;
    r.planned_cap_w = shadow.planned_cap_w;
    r.planned_target_ips = shadow.planned_target_ips;
    s.shadows.push_back(std::move(r));
  }
  s.counters = counters_;
  s.any_grant = any_grant_ ? 1 : 0;
  s.granted_w = granted_w_;
  s.grant_tick = grant_tick_;
  s.epoch = epoch_;
  return s;
}

void PerqController::restore(const ControllerState& s) {
  current_tick_ = s.current_tick;
  last_decided_tick_ = s.last_decided_tick;
  any_tick_seen_ = s.any_tick_seen != 0;
  any_decision_ = s.any_decision != 0;
  have_hb_ = false;  // next tick's heartbeats refresh the budget snapshot
  policy_.restore(s.policy);
  shadows_.clear();
  const auto& catalog = apps::ecp_catalog();
  for (const ShadowRecord& r : s.shadows) {
    PERQ_REQUIRE(r.spec.app_index < catalog.size(),
                 "snapshot app index out of range");
    Shadow shadow{sched::Job(r.spec, &catalog[r.spec.app_index]), r.last_tick,
                  r.seq, r.feeder, r.planned_cap_w, r.planned_target_ips};
    shadow.job.sync_runtime_state(r.progress_s, r.last_min_perf, r.last_job_ips,
                                  r.last_cap_w);
    shadows_.emplace(r.spec.id, std::move(shadow));
  }
  counters_ = s.counters;
  any_grant_ = s.any_grant != 0;
  granted_w_ = s.granted_w;
  grant_tick_ = s.grant_tick;
  // The epoch survives restarts by design: a deposed primary that reloads
  // its snapshot keeps its pre-crash epoch and stays fenced by agents that
  // have already seen its successor's.
  epoch_ = s.epoch;
  any_report_ = false;  // re-report the pending tick after a restart
  // Delta state is deliberately not part of the snapshot: a restarted
  // controller does not know which plan image the agents hold, so the
  // first post-restore broadcast is always a full plan.
  have_base_plan_ = false;
  force_full_ = true;
  decisions_since_full_ = 0;
}

}  // namespace perq::daemon
