// Controller snapshot persistence.
//
// Serializes a ControllerState with the same little-endian wire primitives
// as the protocol (doubles as raw IEEE bits), so a state round-trips
// bit-for-bit -- the restart-determinism guarantee rests on this. The file
// format carries its own magic + version, independent of the network
// protocol version.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "daemon/controller.hpp"

namespace perq::daemon {

/// Serializes a controller state to bytes (header included).
std::vector<std::uint8_t> encode_snapshot(const ControllerState& s);

/// Parses bytes produced by encode_snapshot; nullopt on any malformation.
/// When `why` is non-null it receives a one-line reason on failure (bad
/// magic, unsupported version, crc mismatch, truncated section), so the
/// operator can tell a torn write from the wrong file.
std::optional<ControllerState> decode_snapshot(const std::uint8_t* data,
                                               std::size_t size,
                                               std::string* why = nullptr);

/// Atomically-ish writes the snapshot (temp file + rename). Throws
/// perq::precondition_error on I/O failure.
void save_snapshot(const std::string& path, const ControllerState& s);

/// Loads and parses a snapshot file; throws perq::precondition_error when
/// the file is unreadable or corrupt.
ControllerState load_snapshot(const std::string& path);

}  // namespace perq::daemon
