#include "daemon/agent.hpp"

#include "proto/delta.hpp"
#include "util/require.hpp"

namespace perq::daemon {

NodeAgent::NodeAgent(std::uint32_t id, std::unique_ptr<net::Connection> conn,
                     sim::Cluster* cluster, std::size_t node_begin,
                     std::size_t node_end)
    : id_(id),
      conn_(std::move(conn)),
      cluster_(cluster),
      node_begin_(node_begin),
      node_end_(node_end) {
  PERQ_REQUIRE(conn_ != nullptr, "agent needs a connection");
  PERQ_REQUIRE(cluster_ != nullptr, "agent needs the cluster");
  PERQ_REQUIRE(node_begin_ < node_end_, "agent node range is empty");
  PERQ_REQUIRE(node_end_ <= cluster_->size(), "agent node range out of bounds");
}

bool NodeAgent::leads(const sched::Job& job) const {
  const auto& nodes = job.node_ids();
  return !nodes.empty() && owns_node(nodes.front());
}

void NodeAgent::hello() {
  if (hung_ || !connected()) return;
  proto::Hello h;
  h.agent_id = id_;
  h.node_begin = static_cast<std::uint32_t>(node_begin_);
  h.node_end = static_cast<std::uint32_t>(node_end_);
  // Report the delta base still held (if any): a rejoin whose base matches
  // the controller's keeps riding deltas instead of forcing a full plan.
  h.has_plan = have_base_ ? 1 : 0;
  h.last_plan_tick = have_base_ ? base_plan_.tick : 0;
  conn_->send(h);
}

void NodeAgent::publish(const core::TickView& view) {
  if (hung_ || !connected()) return;
  last_running_.assign(view.running.begin(), view.running.end());

  for (std::size_t i = 0; i < view.running.size(); ++i) {
    const sched::Job& job = *view.running[i];
    if (!leads(job)) continue;
    proto::Telemetry t;
    t.agent_id = id_;
    t.tick = view.tick;
    t.seq = static_cast<std::uint32_t>(i);
    t.flags = 0;
    t.job_id = job.spec().id;
    t.nodes = static_cast<std::uint32_t>(job.spec().nodes);
    t.app_index = static_cast<std::uint32_t>(job.spec().app_index);
    t.runtime_ref_s = job.spec().runtime_ref_s;
    t.progress_s = job.progress_s();
    t.min_perf = job.last_min_perf();
    t.cap_w = job.last_cap_w();
    t.ips = job.last_job_ips();
    t.power_w = i < view.job_power_w.size() ? view.job_power_w[i] : 0.0;
    conn_->send(t);
  }

  for (const auto& [job, lead_node] : view.finished) {
    if (!owns_node(lead_node)) continue;
    proto::Telemetry t;
    t.agent_id = id_;
    t.tick = view.tick;
    t.flags = proto::kTelemetryFinal;
    t.job_id = job->spec().id;
    t.nodes = static_cast<std::uint32_t>(job->spec().nodes);
    t.app_index = static_cast<std::uint32_t>(job->spec().app_index);
    t.runtime_ref_s = job->spec().runtime_ref_s;
    t.progress_s = job->progress_s();
    conn_->send(t);
  }

  proto::Heartbeat hb;
  hb.agent_id = id_;
  hb.tick = view.tick;
  hb.now_s = view.now_s;
  hb.dt_s = view.dt_s;
  hb.budget_total_w = view.budget_total_w;
  hb.budget_for_busy_w = view.budget_for_busy_w;
  hb.total_nodes = view.total_nodes;
  conn_->send(hb);
}

std::optional<proto::CapPlan> NodeAgent::poll_plan() {
  if (hung_ || !connected()) return std::nullopt;
  std::optional<proto::CapPlan> newest;
  inbox_.clear();
  conn_->receive_into(inbox_);  // reused scratch: no per-poll allocation
  for (proto::Message& m : inbox_) {
    if (const auto* ann = std::get_if<proto::PromoteAnnounce>(&m)) {
      // Epoch fencing handshake. A peer announcing an epoch below the
      // newest ever seen is a deposed primary that resumed talking: drop
      // the connection, never apply anything further from it.
      if (ann->epoch < max_epoch_) {
        fence_connection();
        break;
      }
      conn_epoch_ = ann->epoch;
      max_epoch_ = std::max(max_epoch_, ann->epoch);
      continue;
    }
    if (auto* plan = std::get_if<proto::CapPlan>(&m)) {
      if (conn_epoch_ < max_epoch_) {
        // The plan is from a connection whose controller has since been
        // superseded (the agent learned a newer epoch elsewhere).
        fence_connection();
        break;
      }
      // Full plan: becomes the new delta base (canonical image) and, when
      // newest, the plan to actuate -- returned exactly as received, so
      // full-plan-only deployments are bit-for-bit unchanged.
      base_plan_ = *plan;
      proto::canonicalize(base_plan_);
      have_base_ = true;
      if (!newest || plan->tick >= newest->tick) newest = std::move(*plan);
      continue;
    }
    if (auto* delta = std::get_if<proto::CapPlanDelta>(&m)) {
      if (conn_epoch_ < max_epoch_) {
        fence_connection();
        break;
      }
      // Frames are processed in arrival order, so each delta chains off
      // the immediately preceding broadcast. A chain break (missed frame,
      // controller restart) rejects the delta whole: stale caps persist
      // physically on the nodes, holding is the safe default, and the
      // controller's next full plan resynchronizes the base.
      if (!have_base_ || !proto::apply_delta(base_plan_, *delta, patched_)) {
        ++deltas_rejected_;
        have_base_ = false;  // the chain is broken until the next full plan
        continue;
      }
      ++deltas_applied_;
      std::swap(base_plan_, patched_);
      if (!newest || base_plan_.tick >= newest->tick) newest = base_plan_;
      continue;
    }
  }
  return newest;
}

void NodeAgent::apply_plan(const proto::CapPlan& plan) {
  if (hung_) return;
  for (const sched::Job* job : last_running_) {
    const proto::CapEntry* entry = nullptr;
    for (const proto::CapEntry& e : plan.entries) {
      if (e.job_id == job->spec().id) {
        entry = &e;
        break;
      }
    }
    // No entry, or a hold of a job that never had a cap decided: the nodes
    // keep whatever caps they have (set_cap would clamp 0 up to cap_min and
    // silently commit watts the controller never accounted).
    if (entry == nullptr || entry->cap_w <= 0.0) continue;
    for (std::size_t node_id : job->node_ids()) {
      if (owns_node(node_id)) cluster_->node(node_id).set_cap(entry->cap_w);
    }
  }
}

void NodeAgent::bye() {
  if (conn_ == nullptr) return;
  if (conn_->open() && !hung_) {
    proto::Bye b;
    b.agent_id = id_;
    conn_->send(b);
  }
  conn_->close();
}

void NodeAgent::reconnect(std::unique_ptr<net::Connection> conn) {
  PERQ_REQUIRE(conn != nullptr, "reconnect needs a connection");
  if (conn_ != nullptr) conn_->close();
  conn_ = std::move(conn);
  hung_ = false;
  fenced_ = false;
  conn_epoch_ = 0;  // the new peer announces its epoch on accept
  // The delta base deliberately survives: the Hello reports its tick, and
  // the controller keeps the chain alive when the base matches its own
  // canonical image (no broadcast was missed) instead of always paying a
  // full-plan resync.
  hello();
}

void NodeAgent::fence_connection() {
  ++stale_epoch_frames_;
  fenced_ = true;
  if (conn_ != nullptr) {
    if (conn_->open()) {
      proto::Bye b;
      b.agent_id = id_;
      conn_->send(b);
    }
    conn_->close();
  }
}

}  // namespace perq::daemon
