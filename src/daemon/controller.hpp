// perqd: the PERQ controller as a long-running service.
//
// The controller ingests telemetry frames from node agents, batches them
// per control interval, runs the PERQ policy (target generator + MPC) over
// the batch, and broadcasts a cap plan -- the slurmctld/slurmd split
// applied to power management. The service half is deliberately thin: all
// control math lives in core::PerqPolicy, and the controller's job is
// session bookkeeping, staleness, and state continuity.
//
// Fault tolerance model:
//   * Per-job freshness. A job is "fresh" for tick t when its telemetry for
//     tick t arrived; only fresh jobs enter the policy. A job whose agent
//     went silent (crash, hang, partition) keeps its last planned cap --
//     the plant's RAPL caps persist physically, so holding is the safe
//     actuation-free default -- and its held watts are subtracted from the
//     budget row the policy optimizes over.
//
// Hierarchical mode (attach_arbiter): the controller stops assuming the
// heartbeat's cluster budget is *its* budget. Each control interval it
// sends the arbiter a DomainReport (floor, capacity, committed watts, QP
// budget-row dual) and optimizes over the BudgetGrant it gets back; when
// the arbiter is unreachable the last grant is held (the arbiter fences
// the same value on its side, so conservation survives the partition), and
// before any grant ever arrives the controller assumes the static
// budget / domain_count split. A single-domain controller with an arbiter
// attached receives the whole budget as its grant and behaves
// bit-identically to the monolithic configuration.
//   * Heartbeat timeouts. An agent that misses `stale_after_ticks`
//     heartbeats is stale: decide() no longer waits for it. A rejoining
//     agent just reconnects and says Hello; because every Telemetry frame
//     carries the full job descriptor and absolute progress, the
//     controller resynchronizes its shadow state from the first frame.
//   * Restart. snapshot()/restore round-trip the complete decision state
//     (shadow jobs, per-job estimators, MPC warm start, tick counters), so
//     a controller restarted mid-experiment continues with bit-identical
//     cap plans.
//
// High availability (warm standby): decide() depends only on the decision
// state (shadows, heartbeat, policy, grant) -- never on session
// bookkeeping -- so a second controller that re-applies the exact accepted
// frames in the same canonical order reproduces every cap plan bit-exactly.
// The primary records each accepted frame (post-sanity-screen, canonical
// ingest order) and streams one ReplTick per decide to an attached standby
// (attach_standby) and/or an on-disk ReplicationLog; a ReplSnapshot (the
// snapshot codec's bytes) bootstraps the stream and bounds replay. The
// standby (cfg.standby) ignores agent telemetry and lives purely off the
// stream until promote(), which bumps the controller epoch past everything
// replicated and announces it; agents fence any frame from a lower epoch,
// so a deposed primary that resumes broadcasting is Bye'd, never applied.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/perq_policy.hpp"
#include "core/robustness.hpp"
#include "net/frame_pool.hpp"
#include "net/reactor.hpp"
#include "net/sharded_reactor.hpp"
#include "net/transport.hpp"
#include "proto/delta.hpp"
#include "sched/job.hpp"
#include "trace/trace.hpp"

namespace perq {
class ThreadPool;
}

namespace perq::daemon {

class ReplicationLog;

struct ControllerConfig {
  /// Ticks an agent may go silent before it is declared stale (the
  /// heartbeat timeout, in control intervals).
  std::uint64_t stale_after_ticks = 3;
  /// Wall-clock grace service() allows a lagging (not yet stale) agent
  /// before deciding with incomplete data.
  int decide_grace_ms = 250;
  /// Snapshot file written after every `snapshot_every_ticks` decisions
  /// (0 disables periodic snapshots). Empty path disables entirely.
  std::string snapshot_path;
  std::uint64_t snapshot_every_ticks = 0;
  /// Readiness backend for wait(): epoll on Linux, poll(2) as the portable
  /// fallback. The two are proven interchangeable by the bit-identity test.
  net::Reactor::Backend reactor_backend = net::Reactor::default_backend();
  /// Data-plane shards: sessions are partitioned by agent id into this many
  /// reactor shards, each with its own epoll set and frame pool, drained by
  /// worker tasks. 1 keeps the single-threaded pump; any S produces
  /// bit-identical decisions (the canonical merge order is shard-blind).
  std::size_t shards = 1;
  /// Worker pool for shard tasks; null uses ThreadPool::shared(). Ignored
  /// when shards == 1.
  ThreadPool* pool = nullptr;
  /// Delta-encode broadcasts: send CapPlanDelta frames carrying only the
  /// caps that changed since the previous broadcast, falling back to the
  /// full CapPlan whenever an agent (re)joined, the delta would not be
  /// smaller, or the periodic resync below comes due.
  bool delta_broadcast = true;
  /// Broadcast the full plan at least every N decisions even when deltas
  /// apply, bounding how long a desynchronized agent (missed frame) holds
  /// stale caps. 0 means no periodic resync (joins still force full plans).
  std::uint64_t full_plan_every_ticks = 16;
  /// Warm-standby mode: the controller applies the primary's replication
  /// stream (ReplSnapshot restore + ReplTick replay) and drops agent
  /// telemetry/heartbeats until promote() flips it into a serving primary.
  bool standby = false;
  /// Primary side: re-send a full ReplSnapshot every N replicated decides,
  /// resyncing the standby and truncating the replication log. 0 sends only
  /// the initial snapshot (the log then grows one record per decide).
  std::uint64_t replicate_snapshot_every = 64;
};

/// Saturates a cap plan into the plant's feasible set: every cap is forced
/// into [cap_min, TDP] (a non-finite cap collapses to cap_min) and, when the
/// summed commitment exceeds `budget_for_busy_w`, the head-room above the
/// cap_min floor is scaled down uniformly. `nodes_by_job` supplies each
/// job's node count (jobs absent from the map count as one node); pass an
/// infinite budget to disable the budget row. All checks are pure
/// comparisons: a feasible plan is left bit-identical and the function
/// returns false. Returns true iff the plan had to be rescued.
bool clamp_cap_plan(proto::CapPlan& plan, double budget_for_busy_w,
                    const std::map<int, double>& nodes_by_job);

/// One shadow job: the controller's replica of a plant-side running job,
/// rebuilt purely from telemetry.
struct ShadowRecord {
  trace::JobSpec spec;
  double progress_s = 0.0;
  double last_min_perf = 1.0;
  double last_job_ips = 0.0;
  double last_cap_w = 0.0;
  std::uint64_t last_tick = 0;
  std::uint32_t seq = 0;
  std::uint32_t feeder = 0;  ///< agent that last reported this job
  double planned_cap_w = 0.0;
  double planned_target_ips = 0.0;
};

/// Complete restartable state of a PerqController.
struct ControllerState {
  std::uint64_t current_tick = 0;
  std::uint64_t last_decided_tick = 0;
  std::uint8_t any_tick_seen = 0;
  std::uint8_t any_decision = 0;
  core::PerqPolicyState policy;
  std::vector<ShadowRecord> shadows;
  /// Controller-side robustness counters (solver_fallbacks lives inside
  /// `policy`); carried through restarts so accounting never silently resets.
  core::RobustnessCounters counters;
  /// Hier mode: the last grant received (and the tick it was for), so a
  /// restarted domain controller resumes against the same budget row
  /// instead of falling back to the static split for one interval.
  /// any_grant == 0 means no grant was ever received (monolithic runs).
  std::uint8_t any_grant = 0;
  double granted_w = 0.0;
  std::uint64_t grant_tick = 0;
  /// Controller epoch (see PromoteAnnounce): monotonically increasing
  /// across failovers. Fresh controllers start at 1; a snapshot restore
  /// keeps the pre-crash epoch, so a deposed primary that restarts is
  /// still fenced by agents that saw its successor.
  std::uint64_t epoch = 1;
};

/// Power-tree placement of a domain controller (or of an intermediate
/// arbiter acting as a child). Everything defaults to the flat two-level
/// deployment: equal static share, blank tenant, attached at the root.
/// Kept free of hier/ includes -- the daemon layer is below hier in the
/// link order -- so the fields mirror hier::TenantSpec by value.
struct DomainAttachment {
  /// Fraction of the heartbeat's cluster budget this node assumes before
  /// its first grant (and the share its parent reserves while it has never
  /// reported). <= 0 means the legacy equal split, budget / domain_count,
  /// computed with the same division so cold-start behavior stays
  /// bit-identical. Shares compose multiplicatively down the tree:
  /// a child of a node with share s and c siblings gets s / c.
  double static_share = 0.0;
  /// Tenant terms forwarded verbatim in every DomainReport.
  double sla_floor_w = 0.0;
  double priority_weight = 1.0;
  /// Root -> this node ids for the report's tree_path (empty at depth 1).
  std::vector<std::uint32_t> tree_path;
  /// Expected tree_path of the *granting* arbiter. Grants whose path
  /// differs are fenced (counted in grants_fenced), which is what keeps a
  /// re-parented child from drawing watts its old parent still believes
  /// it granted. Empty matches the root arbiter's (v1) grants.
  std::vector<std::uint32_t> parent_path;
};

class PerqController {
 public:
  /// The policy must outlive the controller. For restarts, build the policy
  /// with the same model/config as the snapshotted one, then restore().
  PerqController(std::unique_ptr<net::Listener> listener,
                 core::PerqPolicy& policy, ControllerConfig cfg = {});
  ~PerqController();

  /// Switches the controller into hierarchical mode: it now manages budget
  /// domain `domain_id` of `domain_count` and optimizes over arbiter
  /// grants received on `conn` instead of the heartbeat's cluster budget.
  /// Call before the first decide. domain_count >= 1; the connection must
  /// be a client connection dialed to the arbiter daemon. `att` places the
  /// controller in the power tree; the default is the flat deployment.
  void attach_arbiter(std::unique_ptr<net::Connection> conn,
                      std::uint32_t domain_id, std::uint32_t domain_count,
                      DomainAttachment att = {});

  /// Runtime re-parenting: detaches from the current arbiter (announcing
  /// kDomainLeaving so the old parent releases -- not fences -- the slot),
  /// discards the old grant (counted in grants_fenced: those watts belong
  /// to the old subtree and must never be drawn here again), and attaches
  /// to the new parent under a possibly new id/count/placement. The next
  /// decide falls back to the static share until the new parent grants.
  void reattach_arbiter(std::unique_ptr<net::Connection> conn,
                        std::uint32_t domain_id, std::uint32_t domain_count,
                        DomainAttachment att = {});

  bool domain_mode() const { return arbiter_conn_ != nullptr; }
  std::uint32_t domain_id() const { return domain_id_; }
  const DomainAttachment& attachment() const { return attachment_; }

  /// The budget row decide() would optimize over right now, held watts not
  /// yet subtracted: the current grant in hier mode (static split before
  /// the first grant), the heartbeat budget otherwise.
  double budget_scope_w() const;

  /// Drains the network: accepts agents, ingests every pending message,
  /// reaps dead connections.
  ///
  /// Determinism contract: readiness order (which epoll reports in
  /// whatever order it likes) never reaches the decision state. Every
  /// session is drained into its inbox first -- in parallel across the
  /// reactor shards when cfg.shards > 1 -- then Hellos are processed in
  /// accept order (they only bind agent ids), and everything else is then
  /// ingested in ascending agent-id order: per-shard sorted batches merged
  /// through a reduction tree into one canonical sequence, identical to
  /// the single-pump sort regardless of shard count or arrival order.
  /// Each agent's frames stay FIFO within its connection and tick batching
  /// completes before any decision, so this is the canonical
  /// (tick, node-id) order of the bit-identity contract.
  void pump();

  /// Blocks until a registered descriptor (listener, sessions, arbiter
  /// link) is readable, at most timeout_ms. Returns the ready count (0 on
  /// timeout). Pure pacing sleep when nothing is registered (loopback).
  int wait(int timeout_ms) { return reactor_.wait(timeout_ms); }

  /// True when a tick newer than the last decision has telemetry pending.
  bool tick_pending() const;

  /// True when every live, non-stale agent has reported the newest tick.
  bool ready() const;

  /// Runs one decision over the newest tick's batch and broadcasts the cap
  /// plan. Requires tick_pending().
  const proto::CapPlan& decide();

  /// Event-loop convenience: pump, then decide when either all live agents
  /// reported or the grace deadline for the pending tick expired. Returns
  /// true when a decision was made.
  bool service();

  /// Pollable descriptors (listener + sessions) for net::wait_readable.
  std::vector<int> fds() const;

  std::size_t session_count() const { return sessions_.size(); }
  std::size_t shadow_count() const { return shadows_.size(); }
  std::uint64_t current_tick() const { return current_tick_; }

  /// Stats of the most recent decide(), for tests and the perqd console.
  struct DecideStats {
    std::uint64_t tick = 0;
    std::size_t fresh_jobs = 0;
    std::size_t held_jobs = 0;
    double held_w = 0.0;           ///< watts held for stale jobs
    double budget_row_w = 0.0;     ///< budget the policy optimized over
    std::size_t stale_agents = 0;
    double granted_w = 0.0;        ///< hier: the grant this decide ran under
    bool grant_fresh = false;      ///< hier: grant tick matched the decision
  };
  const DecideStats& last_stats() const { return stats_; }

  /// The most recently broadcast cap plan (valid after the first decide()).
  const proto::CapPlan& last_plan() const { return plan_; }

  /// Broadcast accounting: how many decide() broadcasts went out as deltas
  /// vs full plans (their sum is the decision count).
  std::uint64_t delta_broadcasts() const { return delta_broadcasts_; }
  std::uint64_t full_broadcasts() const { return full_broadcasts_; }

  /// Merged robustness counters: controller-side accounting (corrupt frames,
  /// stale transitions, clamp activations) plus the policy's solver-fallback
  /// count, so one read gives the full picture for the perqd console.
  core::RobustnessCounters counters() const {
    core::RobustnessCounters c = counters_;
    c.solver_fallbacks = policy_.counters().solver_fallbacks;
    return c;
  }

  ControllerState state() const;
  void restore(const ControllerState& s);

  // --- High availability -------------------------------------------------

  /// Attaches a warm standby: `conn` must be a client connection dialed to
  /// the standby's listen address. Sends a full ReplSnapshot immediately,
  /// then one ReplTick per decide. Only valid on a primary; the stream is
  /// one-way (the primary never reads this connection).
  void attach_standby(std::unique_ptr<net::Connection> conn);

  /// Opens the replication WAL (crash recovery for a primary, or disk
  /// warm-up for a standby): replays every intact record into this
  /// controller through the standby apply path, then -- on a primary --
  /// appends one record per decide and truncates at the snapshot cadence.
  /// Call before serving traffic.
  void open_replication_log(const std::string& path);

  /// Standby -> primary takeover: bumps the controller epoch past
  /// everything seen on the replication stream, re-enables agent ingest
  /// and deciding, forces the next broadcast to be a full plan, and sends
  /// PromoteAnnounce to every connected session. Only valid on a standby.
  void promote();

  bool standby() const { return standby_; }
  std::uint64_t epoch() const { return epoch_; }

  /// Replication observability. `replicated_decides` counts ReplTicks
  /// applied (standby) or emitted (primary); `repl_divergence` counts
  /// replayed decisions whose canonical plan crc differed from the
  /// primary's (must stay 0 -- the bit-identity alarm); `repl_rejected`
  /// counts malformed stream frames dropped whole (all-or-nothing).
  std::uint64_t replicated_decides() const { return replicated_decides_; }
  std::uint64_t last_replicated_tick() const { return repl_last_tick_; }
  std::uint64_t repl_divergence() const { return repl_divergence_; }
  std::uint64_t repl_rejected() const { return repl_rejected_; }
  /// crc32 of the canonical encoding of the last broadcast plan (only
  /// computed when replication or standby mode is active).
  std::uint32_t last_plan_crc() const { return last_plan_crc_; }

 private:
  struct Session {
    std::unique_ptr<net::Connection> conn;
    std::uint32_t agent_id = 0;
    bool helloed = false;
    bool said_bye = false;
    std::uint64_t last_tick = 0;
    bool any_message = false;
    bool counted_stale = false;  ///< stale transition already counted
    int reg_fd = -1;             ///< fd registered with the reactor
    /// Reactor shard this session lives in: accept-order round robin until
    /// the Hello binds the agent id, then re-homed to agent_id % shards so
    /// the partition is stable across reconnects.
    std::size_t shard = 0;
    /// Per-pump inbox, reused across ticks (capacity kept) so a steady-
    /// state drain never allocates.
    std::vector<proto::Message> inbox;
  };

  struct Shadow {
    sched::Job job;
    std::uint64_t last_tick = 0;
    std::uint32_t seq = 0;
    std::uint32_t feeder = 0;
    double planned_cap_w = 0.0;
    double planned_target_ips = 0.0;
  };

  void ingest(Session& session, const proto::Message& m);
  /// Applies one sanity-screened frame to the decision state only -- no
  /// session bookkeeping. This is the single mutation path shared by live
  /// ingest and standby replay: the screens are deterministic functions of
  /// replicated state, so re-screening during replay accepts exactly the
  /// frames the primary accepted. Returns false when the frame was screened
  /// out (and counted corrupt where applicable).
  bool ingest_state(const proto::Message& m);
  bool on_telemetry(const proto::Telemetry& t);
  bool accept_grant(const proto::BudgetGrant& g);
  bool session_stale(const Session& s) const;
  void clamp_plan();
  void write_snapshot() const;
  void pump_arbiter();
  void send_domain_report();
  void drain_sessions();
  void build_ingest_order();
  void broadcast_plan();
  ThreadPool& pool();

  // HA plumbing.
  bool replicating() const {
    return !standby_ && (standby_conn_ != nullptr || repl_log_ != nullptr);
  }
  void record_repl(const proto::Message& m);
  void emit_repl_tick(std::uint64_t tick);
  void emit_repl_snapshot();
  void apply_repl_tick(const proto::ReplTick& rt);
  void apply_repl_snapshot(const proto::ReplSnapshot& rs);

  std::unique_ptr<net::Listener> listener_;
  core::PerqPolicy& policy_;
  ControllerConfig cfg_;
  net::ShardedReactor reactor_;
  /// One frame pool per shard: broadcast frames are encoded once per shard
  /// by that shard's worker, so pools are never shared across threads.
  std::vector<net::FramePool> frame_pools_;
  std::size_t next_shard_ = 0;  ///< accept-order round robin (pre-Hello)
  std::vector<Session> sessions_;
  std::vector<std::size_t> ingest_order_;  ///< scratch: session indices
  /// Reduction-tree scratch: per-shard session batches (sorted by the
  /// canonical key) and the pairwise-merge ping-pong buffers.
  std::vector<std::vector<std::size_t>> shard_order_;
  std::vector<std::vector<std::size_t>> merge_scratch_;
  std::map<int, Shadow> shadows_;
  proto::Heartbeat hb_{};
  bool have_hb_ = false;
  std::uint64_t current_tick_ = 0;
  bool any_tick_seen_ = false;
  std::uint64_t last_decided_tick_ = 0;
  bool any_decision_ = false;
  proto::CapPlan plan_;
  DecideStats stats_;
  core::RobustnessCounters counters_;
  // Delta-broadcast state: the canonical (job-id-sorted) image of the last
  // broadcast plan, which every in-sync agent also holds as its patch base.
  proto::CapPlan base_plan_;
  proto::CapPlan sorted_plan_;   ///< scratch: canonical image of plan_
  proto::CapPlanDelta delta_;    ///< scratch: diff against base_plan_
  bool have_base_plan_ = false;
  bool force_full_ = true;       ///< a (re)joined agent needs a full plan
  std::uint64_t decisions_since_full_ = 0;
  std::uint64_t delta_broadcasts_ = 0;
  std::uint64_t full_broadcasts_ = 0;
  std::vector<sched::Job*> fresh_running_;  ///< scratch for PolicyContext
  /// When the pending tick first became visible (grace accounting).
  std::chrono::steady_clock::time_point pending_since_{};
  std::uint64_t pending_tick_ = 0;
  bool pending_timer_armed_ = false;

  // Hierarchical mode state (all inert while arbiter_conn_ is null).
  std::unique_ptr<net::Connection> arbiter_conn_;
  int arbiter_reg_fd_ = -1;  ///< arbiter link fd registered with the reactor
  std::vector<proto::Message> arbiter_inbox_;  ///< reused drain scratch
  std::uint32_t domain_id_ = 0;
  std::uint32_t domain_count_ = 1;
  DomainAttachment attachment_;
  bool any_grant_ = false;
  double granted_w_ = 0.0;        ///< last grant received
  std::uint64_t grant_tick_ = 0;  ///< tick the grant was issued for
  std::uint64_t report_tick_ = 0; ///< newest tick a DomainReport went out for
  bool any_report_ = false;

  // High-availability state (all inert without attach_standby /
  // open_replication_log / cfg.standby).
  bool standby_ = false;
  std::uint64_t epoch_ = 1;
  std::uint64_t repl_epoch_ = 0;  ///< newest epoch seen on the stream
  std::unique_ptr<net::Connection> standby_conn_;  ///< primary -> standby
  std::unique_ptr<ReplicationLog> repl_log_;
  /// Batch under construction: the encoded frames (length prefix included)
  /// accepted since the previous decide, in canonical ingest order.
  std::vector<std::uint8_t> repl_batch_;
  std::vector<std::uint8_t> repl_scratch_;      ///< encode scratch
  std::vector<proto::Message> repl_msgs_;       ///< replay parse scratch
  proto::Message crc_msg_;                      ///< plan-crc encode scratch
  bool repl_overflow_ = false;  ///< batch outgrew a frame; snapshot instead
  bool replaying_ = false;      ///< inside WAL replay (suppress re-emission)
  std::uint64_t replicated_decides_ = 0;
  std::uint64_t repl_last_tick_ = 0;
  std::uint64_t repl_divergence_ = 0;
  std::uint64_t repl_rejected_ = 0;
  std::uint64_t decides_since_repl_snapshot_ = 0;
  std::uint32_t last_plan_crc_ = 0;
};

}  // namespace perq::daemon
