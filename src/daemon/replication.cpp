#include "daemon/replication.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "acct/event_log.hpp"  // acct::crc32
#include "util/require.hpp"

namespace perq::daemon {
namespace {

constexpr char kMagic[8] = {'P', 'Q', 'R', 'E', 'P', 'L', '0', '1'};
constexpr std::size_t kHeaderBytes = 8;  // u32 len + u32 crc

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void write_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void write_record(std::FILE* f, const std::uint8_t* payload, std::size_t n,
                  const std::string& path) {
  std::uint8_t header[kHeaderBytes];
  write_le32(header, static_cast<std::uint32_t>(n));
  write_le32(header + 4, acct::crc32(payload, n));
  PERQ_REQUIRE(std::fwrite(header, 1, sizeof(header), f) == sizeof(header) &&
                   std::fwrite(payload, 1, n, f) == n,
               "replication log write failed: " + path);
}

}  // namespace

ReplicationLog::~ReplicationLog() { close_file(); }

void ReplicationLog::close_file() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void ReplicationLog::open(const std::string& path, const ReplayFn& replay) {
  PERQ_REQUIRE(!opened_, "replication log already open");
  opened_ = true;
  path_ = path;
  if (path_.empty()) return;  // in-memory mode

  // "a+b" creates the file when absent and never clobbers existing bytes.
  file_ = std::fopen(path_.c_str(), "a+b");
  PERQ_REQUIRE(file_ != nullptr, "cannot open replication log " + path_ +
                                     ": " + std::strerror(errno));

  // Scan phase: validate the magic, replay records until the first torn or
  // corrupt one, then truncate everything past the valid prefix.
  std::rewind(file_);
  char magic[sizeof(kMagic)];
  const std::size_t got = std::fread(magic, 1, sizeof(magic), file_);
  if (got == 0) {
    // Fresh log: stamp the magic.
    PERQ_REQUIRE(std::fwrite(kMagic, 1, sizeof(kMagic), file_) ==
                     sizeof(kMagic),
                 "cannot initialize replication log " + path_);
    std::fflush(file_);
    return;
  }
  PERQ_REQUIRE(got == sizeof(magic) &&
                   std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               path_ + " is not a perq replication log");
  long valid_end = static_cast<long>(sizeof(kMagic));

  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint8_t header[kHeaderBytes];
    const std::size_t h = std::fread(header, 1, sizeof(header), file_);
    if (h != sizeof(header)) break;  // clean EOF or torn header
    const std::uint32_t len = read_le32(header);
    const std::uint32_t crc = read_le32(header + 4);
    if (len == 0 || len > kMaxPayload) break;  // corrupt length
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, file_) != len) break;  // torn
    if (acct::crc32(payload.data(), len) != crc) break;           // corrupt
    if (replay) replay(payload.data(), len);
    ++replayed_count_;
    ++record_count_;
    valid_end += static_cast<long>(sizeof(header) + len);
  }

  std::fflush(file_);
  struct stat st{};
  PERQ_REQUIRE(::fstat(::fileno(file_), &st) == 0,
               "cannot stat replication log " + path_);
  if (st.st_size != valid_end) {
    truncated_tail_ = true;
    PERQ_REQUIRE(::ftruncate(::fileno(file_), valid_end) == 0,
                 "cannot truncate torn tail of " + path_);
  }
  std::clearerr(file_);
  PERQ_REQUIRE(std::fseek(file_, 0, SEEK_END) == 0,
               "cannot seek replication log " + path_);
}

void ReplicationLog::append(const std::uint8_t* payload, std::size_t n) {
  PERQ_REQUIRE(opened_, "replication log not open");
  PERQ_REQUIRE(n > 0 && n <= kMaxPayload,
               "replication record size out of range");
  ++record_count_;
  if (file_ == nullptr) return;  // in-memory mode
  write_record(file_, payload, n, path_);
}

void ReplicationLog::rewrite_with_snapshot(
    const std::vector<std::uint8_t>& snapshot_payload) {
  PERQ_REQUIRE(opened_, "replication log not open");
  PERQ_REQUIRE(!snapshot_payload.empty() &&
                   snapshot_payload.size() <= kMaxPayload,
               "replication record size out of range");
  record_count_ = 1;
  if (file_ == nullptr) return;  // in-memory mode

  const std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  PERQ_REQUIRE(out != nullptr, "cannot open replication log " + tmp + ": " +
                                   std::strerror(errno));
  PERQ_REQUIRE(std::fwrite(kMagic, 1, sizeof(kMagic), out) == sizeof(kMagic),
               "cannot initialize replication log " + tmp);
  write_record(out, snapshot_payload.data(), snapshot_payload.size(), tmp);
  PERQ_REQUIRE(std::fflush(out) == 0, "replication log flush failed: " + tmp);
  std::fclose(out);

  close_file();
  PERQ_REQUIRE(std::rename(tmp.c_str(), path_.c_str()) == 0,
               "replication log rename failed: " + path_);
  file_ = std::fopen(path_.c_str(), "a+b");
  PERQ_REQUIRE(file_ != nullptr, "cannot reopen replication log " + path_ +
                                     ": " + std::strerror(errno));
  PERQ_REQUIRE(std::fseek(file_, 0, SEEK_END) == 0,
               "cannot seek replication log " + path_);
}

void ReplicationLog::flush() {
  if (file_ != nullptr) {
    PERQ_REQUIRE(std::fflush(file_) == 0,
                 "replication log flush failed: " + path_);
  }
}

}  // namespace perq::daemon
