// Controller replication WAL.
//
// An append-only log of the primary controller's replication stream: each
// record is one encoded proto frame (a ReplSnapshot marking a full-state
// truncation point, or a ReplTick carrying one decide's canonical inputs),
// stored as `[u32 len][u32 crc32(payload)][payload]` after an 8-byte magic
// -- the exact framing of acct::EventLog, and the same recovery semantics:
// open() replays every intact record in order and truncates the first torn
// or corrupt tail, so a crashed primary (or a standby warming from disk)
// resumes from the longest valid prefix.
//
// The payload is the post-length portion of the frame (magic..body), ready
// for proto::parse_frame. Record integrity is double-covered: the WAL crc
// catches torn writes, and a ReplTick's inner batch is itself all-or-
// nothing at apply time.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace perq::daemon {

class ReplicationLog {
 public:
  /// Matches proto::kMaxFrameBytes: a record is one frame.
  static constexpr std::size_t kMaxPayload = 1u << 20;

  using ReplayFn = std::function<void(const std::uint8_t*, std::size_t)>;

  ReplicationLog() = default;
  ~ReplicationLog();
  ReplicationLog(const ReplicationLog&) = delete;
  ReplicationLog& operator=(const ReplicationLog&) = delete;

  /// Opens (creating when absent) and replays every intact record through
  /// `replay`, then truncates anything past the last valid record. An empty
  /// path is in-memory mode: appends count but nothing persists.
  void open(const std::string& path, const ReplayFn& replay = nullptr);

  /// Appends one record (the post-length bytes of an encoded frame).
  void append(const std::uint8_t* payload, std::size_t n);

  /// Log truncation: atomically replaces the log with the single
  /// `snapshot_payload` record (temp file + rename), so replay cost stays
  /// bounded by the snapshot cadence. Appends continue after it.
  void rewrite_with_snapshot(const std::vector<std::uint8_t>& snapshot_payload);

  void flush();

  bool persistent() const { return file_ != nullptr; }
  std::uint64_t record_count() const { return record_count_; }
  std::uint64_t replayed_count() const { return replayed_count_; }
  /// True when open() found and discarded a torn/corrupt tail.
  bool truncated_tail() const { return truncated_tail_; }
  const std::string& path() const { return path_; }

 private:
  void close_file();

  std::FILE* file_ = nullptr;
  std::string path_;
  bool opened_ = false;
  bool truncated_tail_ = false;
  std::uint64_t record_count_ = 0;    ///< records in the log right now
  std::uint64_t replayed_count_ = 0;  ///< records replayed by open()
};

}  // namespace perq::daemon
