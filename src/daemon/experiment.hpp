// Daemon-mediated experiment harness.
//
// DaemonPlant drives a SimulationEngine through node agents: every control
// interval it publishes telemetry, waits for the controller's cap plan,
// lets the agents actuate their node slices, and feeds the plan back into
// the engine with actuate=false (the agents already set the caps) so the
// engine does only bookkeeping. When no plan arrives before the timeout the
// plant falls back to holding every job at its previous cap -- the plant
// never blocks on the controller, the mirror image of the controller never
// blocking on a silent agent.
//
// run_loopback_daemon_experiment() wires plant and controller through the
// in-process loopback transport, single-threaded and deterministic: the
// proof harness for "daemon run == in-process run, bit for bit".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/perq_policy.hpp"
#include "daemon/agent.hpp"
#include "daemon/controller.hpp"
#include "net/transport.hpp"

namespace perq::daemon {

struct PlantConfig {
  std::size_t agents = 1;      ///< node-agent count; nodes split evenly
  int plan_timeout_ms = 2000;  ///< wait for a cap plan before holding caps
};

/// The plant side of a daemon run: engine + node agents.
class DaemonPlant {
 public:
  DaemonPlant(const core::EngineConfig& cfg, net::Transport& transport,
              const std::string& address, const PlantConfig& pcfg = {});

  core::SimulationEngine& engine() { return engine_; }
  NodeAgent& agent(std::size_t i) { return *agents_[i]; }
  std::size_t agent_count() const { return agents_.size(); }
  bool done() const { return engine_.done(); }

  /// Runs one control interval end to end. `service` is invoked while
  /// waiting for the plan -- pass the controller's service() for
  /// single-threaded runs, or nothing when the controller runs in its own
  /// thread. Returns true when this tick's plan arrived in time, false when
  /// the plant held the previous caps.
  bool step(const std::function<void()>& service = {});

  /// Re-establishes every lost agent connection (controller restarted).
  /// Safe to call every held tick: returns immediately while the listener
  /// is still away. Returns the number of agents reconnected this call.
  std::size_t reconnect_lost(net::Transport& transport,
                             const std::string& address);

  core::RunResult finish(std::string policy_name) {
    return engine_.finish(std::move(policy_name));
  }

 private:
  core::SimulationEngine engine_;
  PlantConfig pcfg_;
  std::vector<std::unique_ptr<NodeAgent>> agents_;
};

/// Runs a full experiment through controller + agents over the loopback
/// transport. Deterministic; produces bit-identical cap schedules to
/// run_experiment(cfg, policy) with an identically configured policy.
core::RunResult run_loopback_daemon_experiment(const core::EngineConfig& cfg,
                                               core::PerqPolicy& policy,
                                               std::size_t agents = 1,
                                               const ControllerConfig& ccfg = {});

}  // namespace perq::daemon
