// Daemon-mediated experiment harness.
//
// DaemonPlant drives a SimulationEngine through node agents: every control
// interval it publishes telemetry, waits for the controller's cap plan,
// lets the agents actuate their node slices, and feeds the plan back into
// the engine with actuate=false (the agents already set the caps) so the
// engine does only bookkeeping. When no plan arrives before the timeout the
// plant falls back to holding every job at its previous cap -- the plant
// never blocks on the controller, the mirror image of the controller never
// blocking on a silent agent.
//
// run_loopback_daemon_experiment() wires plant and controller through the
// in-process loopback transport, single-threaded and deterministic: the
// proof harness for "daemon run == in-process run, bit for bit".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/perq_policy.hpp"
#include "core/robustness.hpp"
#include "daemon/agent.hpp"
#include "daemon/controller.hpp"
#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "util/backoff.hpp"

namespace perq::daemon {

struct PlantConfig {
  std::size_t agents = 1;      ///< node-agent count; nodes split evenly
  int plan_timeout_ms = 2000;  ///< wait for a cap plan before holding caps
  /// Readiness backend for the plan-wait loop (see ControllerConfig).
  net::Reactor::Backend reactor_backend = net::Reactor::default_backend();
  /// How long the constructor keeps retrying the initial connect before
  /// giving up (covers the plant-before-controller start order). <= 0
  /// preserves the strict behavior: one attempt, fail loudly.
  int connect_wait_ms = 0;
  /// Reconnect pacing for reconnect_lost(), measured in control ticks (the
  /// plant's natural clock). Exponential with seeded jitter so a thundering
  /// herd of agents does not hammer a restarting controller, yet every run
  /// with the same seed retries at exactly the same ticks.
  BackoffConfig reconnect_backoff{/*initial_delay=*/1.0,
                                  /*multiplier=*/2.0,
                                  /*max_delay=*/8.0,
                                  /*jitter=*/0.25,
                                  /*max_attempts=*/0};
  std::uint64_t backoff_seed = 42;  ///< per-agent jitter streams derive from it

  /// Warm-standby failover: candidate controller addresses per group
  /// (outer index = group). Used by reconnect_failover(): each group dials
  /// its current candidate; a group whose plan has been missing for
  /// failover_after_held_ticks consecutive ticks (heartbeat loss, the
  /// primary is presumed dead) drops its connections and advances to the
  /// next candidate, wrapping. A fenced agent (deposed-primary rejection)
  /// advances its group's cursor immediately. Empty = no failover.
  std::vector<std::vector<std::string>> failover_addresses;
  std::size_t failover_after_held_ticks = 0;  ///< 0 disables failover

  /// Agent-local fail-safe: once a group has delivered no plan for this
  /// many consecutive ticks, its jobs' held caps decay geometrically toward
  /// failsafe_floor_w each further tick (cap = floor + (cap-floor)*decay)
  /// instead of holding stale high caps forever -- the controller may be
  /// gone for good, and the cluster must drift to a safe power state.
  /// 0 disables the decay (bit-identical to the pre-failsafe behavior).
  std::size_t failsafe_after_ticks = 0;
  /// Safe floor in watts per node; <= 0 means the plant uses the node
  /// power spec's cap_min. Clamped into [cap_min, tdp] at use.
  double failsafe_floor_w = 0.0;
  double failsafe_decay = 0.5;  ///< per-tick geometric decay factor in [0,1)
};

/// The plant side of a daemon run: engine + node agents.
///
/// Hierarchical deployments pass several controller addresses: agent i
/// dials addresses[i % K], so jobs land in the budget domain that owns
/// their lead agent (placement-based domains -- both sides agree without a
/// handshake, the wire-level analogue of DomainMap's id-mod-K). step()
/// then waits for one cap plan per controller, merges them (entry sets are
/// disjoint: exactly one agent, hence one controller, leads each job), and
/// applies the merged plan everywhere so a job spanning agent slices gets
/// one consistent cap. With one address everything below degenerates to
/// the single-controller path, bit for bit.
class DaemonPlant {
 public:
  DaemonPlant(const core::EngineConfig& cfg, net::Transport& transport,
              const std::string& address, const PlantConfig& pcfg = {});
  DaemonPlant(const core::EngineConfig& cfg, net::Transport& transport,
              const std::vector<std::string>& addresses,
              const PlantConfig& pcfg = {});

  core::SimulationEngine& engine() { return engine_; }
  NodeAgent& agent(std::size_t i) { return *agents_[i]; }
  std::size_t agent_count() const { return agents_.size(); }
  bool done() const { return engine_.done(); }

  /// Runs one control interval end to end. `service` is invoked while
  /// waiting for the plan -- pass the controller's service() for
  /// single-threaded runs, or nothing when the controller runs in its own
  /// thread. Returns true when every controller's plan for this tick
  /// arrived in time; jobs of a controller whose plan was missing held
  /// their previous caps.
  bool step(const std::function<void()>& service = {});

  /// Re-establishes lost agent connections (controller restarted). Safe to
  /// call every held tick: attempts are paced by the per-agent exponential
  /// backoff (PlantConfig::reconnect_backoff, tick clock), and a failed
  /// attempt backs off every disconnected agent dialing the same address --
  /// one refusal proves that listener is still away; other controllers'
  /// agents keep dialing. Returns the number of agents reconnected.
  std::size_t reconnect_lost(net::Transport& transport,
                             const std::string& address);
  std::size_t reconnect_lost(net::Transport& transport,
                             const std::vector<std::string>& addresses);

  /// reconnect_lost() through PlantConfig::failover_addresses: each group
  /// dials its current candidate address (the cursor advances on failover
  /// and on fencing -- see PlantConfig). Call once per held tick, like
  /// reconnect_lost.
  std::size_t reconnect_failover(net::Transport& transport);

  /// Consecutive ticks group `g` has delivered no plan (0 when current).
  std::size_t group_held_ticks(std::size_t g) const {
    return group_held_ticks_[g];
  }
  /// Current failover-candidate index for group `g`.
  std::size_t failover_cursor(std::size_t g) const { return addr_cursor_[g]; }

  /// Plant-side robustness accounting: frames_dropped counts delivered cap
  /// plans discarded by the whole-plan validity check in step() (the plant
  /// held previous caps instead), reconnect_attempts counts dials made by
  /// reconnect_lost().
  const core::RobustnessCounters& counters() const { return counters_; }

  core::RunResult finish(std::string policy_name) {
    return engine_.finish(std::move(policy_name));
  }

 private:
  /// Reconciles the reactor's interest set with the agents' current fds
  /// (connections die and reconnect between steps). O(agents) integer
  /// compares when nothing changed.
  void sync_reactor();
  /// Group of the agent leading `job` (the one owning its first node).
  std::size_t lead_group(const sched::Job& job) const;

  core::SimulationEngine engine_;
  PlantConfig pcfg_;
  std::size_t groups_ = 1;  ///< controller count; agent i dials group i % K
  std::vector<std::unique_ptr<NodeAgent>> agents_;
  std::vector<Backoff> backoff_;  ///< reconnect pacing, one per agent
  core::RobustnessCounters counters_;
  std::uint64_t ticks_ = 0;  ///< completed step() calls (backoff clock)
  net::Reactor reactor_;
  std::vector<int> reg_fds_;  ///< fd registered per agent (-1 = none)
  // Failover / fail-safe bookkeeping (inert while both features are off).
  std::vector<std::size_t> group_held_ticks_;   ///< consecutive planless ticks
  std::vector<std::size_t> group_failover_ticks_;  ///< reset on each failover
  std::vector<std::size_t> addr_cursor_;        ///< failover candidate index
  std::vector<std::uint8_t> fence_bumped_;      ///< fence already advanced cursor
};

/// Runs a full experiment through controller + agents over the loopback
/// transport. Deterministic; produces bit-identical cap schedules to
/// run_experiment(cfg, policy) with an identically configured policy.
core::RunResult run_loopback_daemon_experiment(const core::EngineConfig& cfg,
                                               core::PerqPolicy& policy,
                                               std::size_t agents = 1,
                                               const ControllerConfig& ccfg = {});

/// Same experiment over real loopback-TCP sockets, single-threaded and
/// lockstep (the controller is serviced from the plant's wait loop).
/// `backend` selects the readiness backend on both sides. Decisions depend
/// only on complete tick batches -- never on readiness or arrival order --
/// so this run is bit-identical to the loopback and in-process runs, which
/// is exactly what the epoll-vs-poll determinism test asserts.
core::RunResult run_tcp_daemon_experiment(
    const core::EngineConfig& cfg, core::PerqPolicy& policy,
    std::size_t agents = 1, const ControllerConfig& ccfg = {},
    net::Reactor::Backend backend = net::Reactor::default_backend());

}  // namespace perq::daemon
