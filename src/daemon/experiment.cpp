#include "daemon/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "apps/app_model.hpp"
#include "net/loopback.hpp"
#include "net/tcp.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace perq::daemon {

namespace {

/// One connect attempt, with a retry window for the plant-before-controller
/// start order. With wait_ms <= 0 the single attempt's failure propagates
/// unchanged (loopback throws, TCP returns null); otherwise failures are
/// swallowed and retried until the window closes -- the last attempt again
/// fails loudly so the caller sees the transport's own diagnostics.
std::unique_ptr<net::Connection> connect_with_retry(net::Transport& transport,
                                                    const std::string& address,
                                                    int wait_ms) {
  if (wait_ms <= 0) return transport.connect(address);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wait_ms);
  for (;;) {
    const bool last = std::chrono::steady_clock::now() >= deadline;
    if (last) return transport.connect(address);
    try {
      if (auto conn = transport.connect(address)) return conn;
    } catch (const precondition_error&) {
      // No listener yet (loopback); keep waiting for the controller.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace

DaemonPlant::DaemonPlant(const core::EngineConfig& cfg,
                         net::Transport& transport, const std::string& address,
                         const PlantConfig& pcfg)
    : DaemonPlant(cfg, transport, std::vector<std::string>{address}, pcfg) {}

DaemonPlant::DaemonPlant(const core::EngineConfig& cfg,
                         net::Transport& transport,
                         const std::vector<std::string>& addresses,
                         const PlantConfig& pcfg)
    : engine_(cfg),
      pcfg_(pcfg),
      groups_(addresses.size()),
      reactor_(pcfg.reactor_backend) {
  PERQ_REQUIRE(groups_ >= 1, "plant needs at least one controller address");
  PERQ_REQUIRE(pcfg_.agents >= groups_,
               "need at least one agent per controller");
  const std::size_t total = engine_.cluster().size();
  PERQ_REQUIRE(pcfg_.agents <= total, "more agents than nodes");

  // Split the node range as evenly as possible; the first `total % agents`
  // slices get one extra node. Agent i speaks to controller i % K, so the
  // machine room interleaves across budget domains.
  const std::size_t base = total / pcfg_.agents;
  const std::size_t extra = total % pcfg_.agents;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < pcfg_.agents; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    const std::string& address = addresses[i % groups_];
    auto conn = connect_with_retry(transport, address, pcfg_.connect_wait_ms);
    PERQ_REQUIRE(conn != nullptr, "cannot connect to controller: " + address);
    agents_.push_back(std::make_unique<NodeAgent>(static_cast<std::uint32_t>(i),
                                                  std::move(conn),
                                                  &engine_.cluster(), begin,
                                                  begin + len));
    agents_.back()->hello();
    backoff_.emplace_back(pcfg_.reconnect_backoff,
                          pcfg_.backoff_seed + static_cast<std::uint64_t>(i));
    begin += len;
  }
  reg_fds_.assign(agents_.size(), -1);
  if (!pcfg_.failover_addresses.empty()) {
    PERQ_REQUIRE(pcfg_.failover_addresses.size() == groups_,
                 "failover address lists do not match controller count");
    for (const auto& list : pcfg_.failover_addresses) {
      PERQ_REQUIRE(!list.empty(), "empty failover address list for a group");
    }
  }
  group_held_ticks_.assign(groups_, 0);
  group_failover_ticks_.assign(groups_, 0);
  addr_cursor_.assign(groups_, 0);
  fence_bumped_.assign(agents_.size(), 0);
  sync_reactor();
}

std::size_t DaemonPlant::lead_group(const sched::Job& job) const {
  const auto& nodes = job.node_ids();
  if (nodes.empty()) return 0;
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (agents_[i]->owns_node(nodes.front())) return i % groups_;
  }
  return 0;
}

void DaemonPlant::sync_reactor() {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const int fd = agents_[i]->fd();
    if (fd == reg_fds_[i]) continue;
    reactor_.remove(reg_fds_[i]);  // no-op for -1 / never-registered
    reactor_.add(fd);              // no-op for -1 (loopback, disconnected)
    reg_fds_[i] = fd;
  }
}

bool DaemonPlant::step(const std::function<void()>& service) {
  const core::TickView& view = engine_.begin_tick();
  // Publish in parallel: each agent writes only its own connection (TCP
  // sockets and loopback queue pairs are per-connection state), and the
  // controller's canonical ingest order is arrival-order-blind, so the
  // sweep decomposes per agent with no effect on the decision state.
  ThreadPool::shared().parallel_for(
      0, agents_.size(), [this, &view](std::size_t i) { agents_[i]->publish(view); },
      /*grain=*/8);

  Stopwatch wait_timer;
  // One plan slot per controller; agent i % K feeds slot i % K. The slots
  // are merged below -- each controller plans only the jobs its own agents
  // lead, so the entry sets are disjoint and concatenation in group order
  // is deterministic.
  std::vector<std::optional<proto::CapPlan>> plans(groups_);
  std::vector<std::optional<proto::CapPlan>> polled(agents_.size());
  std::size_t have = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(pcfg_.plan_timeout_ms);
  for (;;) {
    if (service) service();
    // Parallel drain (each agent's connection is private to its slot),
    // serial commit in agent-id order so the slot bookkeeping is
    // deterministic however the polls were scheduled.
    ThreadPool::shared().parallel_for(
        0, agents_.size(),
        [this, &polled](std::size_t i) { polled[i] = agents_[i]->poll_plan(); },
        /*grain=*/8);
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      if (auto& p = polled[i]; p.has_value() && p->tick == view.tick) {
        auto& slot = plans[i % groups_];
        if (!slot.has_value()) ++have;
        slot = std::move(p);
      }
      polled[i].reset();
    }
    if (have == groups_) break;
    if (std::chrono::steady_clock::now() >= deadline) break;
    // Block briefly on the agent sockets through the persistent reactor (a
    // plain 1 ms tick for loopback, where fds are -1 and never registered,
    // so the wait degenerates to a sleep).
    sync_reactor();
    reactor_.wait(1);
  }

  // Merge the per-controller plans (group order; one address reduces this
  // to the single plan verbatim). A missing slot simply contributes no
  // entries: its controller's jobs fall back to holding previous caps.
  std::optional<proto::CapPlan> plan;
  if (have > 0) {
    plan.emplace();
    plan->tick = view.tick;
    for (const auto& slot : plans) {
      if (!slot.has_value()) continue;
      plan->entries.insert(plan->entries.end(), slot->entries.begin(),
                           slot->entries.end());
    }
  }

  // Heartbeat-loss bookkeeping: consecutive planless ticks per group drive
  // both the agent-local fail-safe decay below and controller failover.
  for (std::size_t g = 0; g < groups_; ++g) {
    if (plans[g].has_value()) {
      group_held_ticks_[g] = 0;
      group_failover_ticks_[g] = 0;
    } else {
      ++group_held_ticks_[g];
      ++group_failover_ticks_[g];
    }
  }

  std::vector<double> caps;
  std::vector<double> targets;
  if (!view.running.empty()) {
    caps.resize(view.running.size());
    targets.assign(view.running.size(), 0.0);
    for (std::size_t i = 0; i < view.running.size(); ++i) {
      // Fallback: hold whatever cap the job already runs at.
      caps[i] = view.running[i]->last_cap_w();
    }
    if (plan.has_value()) {
      // Whole-plan validity check before anything is actuated: a corrupted
      // plan (bit-flipped cap, watts beyond the budget row) must not reach
      // the RAPL caps or the engine's budget invariant. Any violation
      // discards the entire plan -- holding previous caps is always safe,
      // and a plan mutilated in flight cannot be trusted entry by entry.
      const auto& spec = apps::node_power_spec();
      std::vector<double> merged = caps;
      bool sane = true;
      for (std::size_t i = 0; i < view.running.size() && sane; ++i) {
        const int id = view.running[i]->spec().id;
        for (const proto::CapEntry& e : plan->entries) {
          if (e.job_id != id) continue;
          if (e.cap_w != 0.0 &&  // 0 is the "hold, no cap decided" sentinel
              (!std::isfinite(e.cap_w) || e.cap_w < spec.cap_min - 1e-6 ||
               e.cap_w > spec.tdp + 1e-6)) {
            sane = false;
          }
          if (!std::isfinite(e.target_ips) || e.target_ips < 0.0) sane = false;
          merged[i] = e.cap_w;
          break;
        }
      }
      if (sane) {
        double committed_w = 0.0;
        for (std::size_t i = 0; i < view.running.size(); ++i) {
          committed_w += merged[i] *
                         static_cast<double>(view.running[i]->spec().nodes);
        }
        if (committed_w > view.budget_for_busy_w + 1e-3) sane = false;
      }
      if (sane) {
        for (std::size_t i = 0; i < view.running.size(); ++i) {
          const int id = view.running[i]->spec().id;
          for (const proto::CapEntry& e : plan->entries) {
            if (e.job_id == id) {
              caps[i] = e.cap_w;
              targets[i] = e.target_ips;
              break;
            }
          }
        }
        // Parallel actuation: agent i caps only nodes inside its own
        // [node_begin, node_end) slice, so the writes are disjoint.
        ThreadPool::shared().parallel_for(
            0, agents_.size(),
            [this, &plan](std::size_t i) { agents_[i]->apply_plan(*plan); },
            /*grain=*/8);
      } else {
        ++counters_.frames_dropped;
        plan.reset();  // hold previous caps, as if no plan had arrived
      }
    }
    // Agent-local fail-safe: jobs of a group that has been silent past the
    // threshold stop holding their (possibly high) caps and decay toward
    // the safe floor -- a dead controller must not pin the cluster at the
    // power level of its last decision forever. The decayed caps go through
    // the agents' normal actuation path, so a hung agent (which would not
    // have actuated a real plan either) is skipped: the fail-safe is local
    // to each live agent, not a plant-level override.
    if (pcfg_.failsafe_after_ticks > 0 && have < groups_) {
      const auto& spec = apps::node_power_spec();
      const double floor =
          std::clamp(pcfg_.failsafe_floor_w > 0.0 ? pcfg_.failsafe_floor_w
                                                  : spec.cap_min,
                     spec.cap_min, spec.tdp);
      proto::CapPlan decayed;
      decayed.tick = view.tick;
      for (std::size_t i = 0; i < view.running.size(); ++i) {
        const std::size_t g = lead_group(*view.running[i]);
        if (plans[g].has_value()) continue;  // this group delivered
        if (group_held_ticks_[g] < pcfg_.failsafe_after_ticks) continue;
        const double cur = caps[i];
        if (cur <= floor + 1e-9) continue;  // already at the safe floor
        const double next = floor + (cur - floor) * pcfg_.failsafe_decay;
        caps[i] = next;
        decayed.entries.push_back(
            {view.running[i]->spec().id, next, 0.0, 1});
      }
      if (!decayed.entries.empty()) {
        ++counters_.failsafe_activations;
        ThreadPool::shared().parallel_for(
            0, agents_.size(),
            [this, &decayed](std::size_t i) { agents_[i]->apply_plan(decayed); },
            /*grain=*/8);
      }
    }
    engine_.note_decision_time(wait_timer.seconds());
  }
  engine_.apply_caps(std::move(caps), std::move(targets), /*actuate=*/false);
  engine_.advance();
  ++ticks_;

  // Controller failover: a group silent for the whole window has lost its
  // primary (heartbeat loss on the plant's clock -- a partitioned primary
  // keeps the sockets open, so EOF alone can never trigger this). Drop the
  // group's connections and advance to the next candidate controller;
  // reconnect_failover() dials it on the caller's next held-tick pass.
  if (pcfg_.failover_after_held_ticks > 0 &&
      !pcfg_.failover_addresses.empty()) {
    for (std::size_t g = 0; g < groups_; ++g) {
      if (group_failover_ticks_[g] < pcfg_.failover_after_held_ticks) continue;
      group_failover_ticks_[g] = 0;
      addr_cursor_[g] =
          (addr_cursor_[g] + 1) % pcfg_.failover_addresses[g].size();
      for (std::size_t i = 0; i < agents_.size(); ++i) {
        if (i % groups_ != g) continue;
        agents_[i]->drop();
        backoff_[i].reset();  // deliberate failover: dial the successor now
      }
    }
  }
  // Epoch-fence accounting lives in the agents; mirror the total so the
  // plant's counters tell the whole story.
  std::uint64_t fence_total = 0;
  for (const auto& a : agents_) fence_total += a->stale_epoch_frames();
  counters_.stale_epoch_frames = fence_total;
  return plan.has_value() && have == groups_;
}

std::size_t DaemonPlant::reconnect_lost(net::Transport& transport,
                                        const std::string& address) {
  return reconnect_lost(transport, std::vector<std::string>{address});
}

std::size_t DaemonPlant::reconnect_lost(
    net::Transport& transport, const std::vector<std::string>& addresses) {
  PERQ_REQUIRE(addresses.size() == groups_,
               "reconnect address list does not match controller count");
  const double now = static_cast<double>(ticks_);
  std::size_t n = 0;
  std::vector<std::uint8_t> group_down(groups_, 0);
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const std::size_t g = i % groups_;
    if (group_down[g]) continue;
    NodeAgent& agent = *agents_[i];
    if (agent.connected()) continue;
    if (!backoff_[i].ready(now)) continue;
    std::unique_ptr<net::Connection> conn;
    bool failed = false;
    ++counters_.reconnect_attempts;
    try {
      conn = transport.connect(addresses[g]);
    } catch (const precondition_error&) {
      failed = true;  // no listener at the address yet (loopback)
    }
    if (conn == nullptr) failed = true;  // TCP connect refused/timed out
    if (failed) {
      // Every disconnected agent of this group dials the same address, so
      // this one refusal proves that listener is still away: back off the
      // whole group and stop dialing it this call. Agents of the other
      // controllers keep going -- domains fail independently.
      group_down[g] = 1;
      for (std::size_t j = i; j < agents_.size(); ++j) {
        if (j % groups_ == g && !agents_[j]->connected() &&
            backoff_[j].ready(now)) {
          backoff_[j].record_failure(now);
        }
      }
      continue;
    }
    agent.reconnect(std::move(conn));
    backoff_[i].reset();
    ++n;
  }
  return n;
}

std::size_t DaemonPlant::reconnect_failover(net::Transport& transport) {
  PERQ_REQUIRE(!pcfg_.failover_addresses.empty(),
               "reconnect_failover needs PlantConfig::failover_addresses");
  // A fenced agent has positive proof its peer was deposed (stale epoch),
  // stronger than any timeout: advance its group's cursor at once. The
  // bump flag keeps one fence event from advancing the cursor on every
  // subsequent call while the agent waits to reconnect.
  std::vector<std::uint8_t> bump(groups_, 0);
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (agents_[i]->fenced()) {
      if (!fence_bumped_[i]) {
        fence_bumped_[i] = 1;
        bump[i % groups_] = 1;
      }
    } else {
      fence_bumped_[i] = 0;
    }
  }
  std::vector<std::string> addrs(groups_);
  for (std::size_t g = 0; g < groups_; ++g) {
    if (bump[g]) {
      addr_cursor_[g] =
          (addr_cursor_[g] + 1) % pcfg_.failover_addresses[g].size();
      group_failover_ticks_[g] = 0;
      for (std::size_t i = 0; i < agents_.size(); ++i) {
        if (i % groups_ == g && !agents_[i]->connected()) backoff_[i].reset();
      }
    }
    addrs[g] = pcfg_.failover_addresses[g][addr_cursor_[g]];
  }
  return reconnect_lost(transport, addrs);
}

core::RunResult run_loopback_daemon_experiment(const core::EngineConfig& cfg,
                                               core::PerqPolicy& policy,
                                               std::size_t agents,
                                               const ControllerConfig& ccfg) {
  net::LoopbackTransport transport;
  const std::string address = "perqd";
  PerqController controller(transport.listen(address), policy, ccfg);

  PlantConfig pcfg;
  pcfg.agents = agents;
  DaemonPlant plant(cfg, transport, address, pcfg);
  controller.pump();

  while (!plant.done()) {
    plant.step([&controller] { controller.service(); });
  }
  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  controller.pump();
  return plant.finish(policy.name());
}

core::RunResult run_tcp_daemon_experiment(const core::EngineConfig& cfg,
                                          core::PerqPolicy& policy,
                                          std::size_t agents,
                                          const ControllerConfig& ccfg,
                                          net::Reactor::Backend backend) {
  net::TcpTransport transport;
  auto listener = transport.listen("127.0.0.1:0");
  const std::string address =
      "127.0.0.1:" + std::to_string(net::listener_port(*listener));

  ControllerConfig controller_cfg = ccfg;
  controller_cfg.reactor_backend = backend;
  PerqController controller(std::move(listener), policy, controller_cfg);

  PlantConfig pcfg;
  pcfg.agents = agents;
  pcfg.reactor_backend = backend;
  // Lockstep over the kernel loopback device: frames are never dropped,
  // only briefly in flight. A generous timeout keeps a slow CI machine
  // from turning an in-flight plan into a held tick (which would fork the
  // run from the loopback/in-process reference).
  pcfg.plan_timeout_ms = 60000;
  DaemonPlant plant(cfg, transport, address, pcfg);
  controller.pump();

  while (!plant.done()) {
    plant.step([&controller] { controller.service(); });
  }
  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  controller.pump();
  return plant.finish(policy.name());
}

}  // namespace perq::daemon
