#include "daemon/experiment.hpp"

#include <chrono>
#include <utility>

#include "net/loopback.hpp"
#include "net/tcp.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace perq::daemon {

DaemonPlant::DaemonPlant(const core::EngineConfig& cfg,
                         net::Transport& transport, const std::string& address,
                         const PlantConfig& pcfg)
    : engine_(cfg), pcfg_(pcfg) {
  PERQ_REQUIRE(pcfg_.agents >= 1, "plant needs at least one agent");
  const std::size_t total = engine_.cluster().size();
  PERQ_REQUIRE(pcfg_.agents <= total, "more agents than nodes");

  // Split the node range as evenly as possible; the first `total % agents`
  // slices get one extra node.
  const std::size_t base = total / pcfg_.agents;
  const std::size_t extra = total % pcfg_.agents;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < pcfg_.agents; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    auto conn = transport.connect(address);
    agents_.push_back(std::make_unique<NodeAgent>(static_cast<std::uint32_t>(i),
                                                  std::move(conn),
                                                  &engine_.cluster(), begin,
                                                  begin + len));
    agents_.back()->hello();
    begin += len;
  }
}

bool DaemonPlant::step(const std::function<void()>& service) {
  const core::TickView& view = engine_.begin_tick();
  for (auto& agent : agents_) agent->publish(view);

  Stopwatch wait_timer;
  std::optional<proto::CapPlan> plan;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(pcfg_.plan_timeout_ms);
  for (;;) {
    if (service) service();
    for (auto& agent : agents_) {
      if (auto p = agent->poll_plan(); p.has_value() && p->tick == view.tick) {
        plan = std::move(p);
      }
    }
    if (plan.has_value()) break;
    if (std::chrono::steady_clock::now() >= deadline) break;
    // Block briefly on the agent sockets (a plain 1 ms tick for loopback,
    // where fds are -1 and the poll degenerates to a sleep).
    std::vector<int> fds;
    fds.reserve(agents_.size());
    for (const auto& agent : agents_) fds.push_back(agent->fd());
    net::wait_readable(fds, 1);
  }

  std::vector<double> caps;
  std::vector<double> targets;
  if (!view.running.empty()) {
    caps.resize(view.running.size());
    targets.assign(view.running.size(), 0.0);
    for (std::size_t i = 0; i < view.running.size(); ++i) {
      // Fallback: hold whatever cap the job already runs at.
      caps[i] = view.running[i]->last_cap_w();
    }
    if (plan.has_value()) {
      for (std::size_t i = 0; i < view.running.size(); ++i) {
        const int id = view.running[i]->spec().id;
        for (const proto::CapEntry& e : plan->entries) {
          if (e.job_id == id) {
            caps[i] = e.cap_w;
            targets[i] = e.target_ips;
            break;
          }
        }
      }
      for (auto& agent : agents_) agent->apply_plan(*plan);
    }
    engine_.note_decision_time(wait_timer.seconds());
  }
  engine_.apply_caps(std::move(caps), std::move(targets), /*actuate=*/false);
  engine_.advance();
  return plan.has_value();
}

std::size_t DaemonPlant::reconnect_lost(net::Transport& transport,
                                        const std::string& address) {
  std::size_t n = 0;
  for (auto& agent : agents_) {
    if (agent->connected()) continue;
    std::unique_ptr<net::Connection> conn;
    try {
      conn = transport.connect(address);
    } catch (const precondition_error&) {
      break;  // no listener at the address yet (loopback)
    }
    if (conn == nullptr) break;  // TCP connect refused/timed out
    agent->reconnect(std::move(conn));
    ++n;
  }
  return n;
}

core::RunResult run_loopback_daemon_experiment(const core::EngineConfig& cfg,
                                               core::PerqPolicy& policy,
                                               std::size_t agents,
                                               const ControllerConfig& ccfg) {
  net::LoopbackTransport transport;
  const std::string address = "perqd";
  PerqController controller(transport.listen(address), policy, ccfg);

  PlantConfig pcfg;
  pcfg.agents = agents;
  DaemonPlant plant(cfg, transport, address, pcfg);
  controller.pump();

  while (!plant.done()) {
    plant.step([&controller] { controller.service(); });
  }
  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  controller.pump();
  return plant.finish(policy.name());
}

}  // namespace perq::daemon
