// Durable accounting store (the slurmdbd role): consumes job lifecycle
// events, persists them through the append-only EventLog, and maintains the
// in-memory association index (per-job records, per-user rollups) that
// queries and the fairness audit read.
//
// The store is rebuilt from the log on open -- open an existing path and
// the replayed state matches exactly what was recorded (modulo a torn
// tail, which recovery cuts). Typical wiring hangs Store::record_* off
// SchedCtl's event hook, keeping the controller free of any storage
// dependency.
//
// Per-job fairness follows the paper's equal-share yardstick: each End
// event carries the achieved runtime and the baseline runtime the job
// would have seen at an equal share of the cluster power budget; a job
// "beats equal share" when it ran at least as fast as that baseline.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "acct/event_log.hpp"

namespace perq::acct {

enum class JobPhase : std::uint8_t {
  kSubmitted = 0,
  kStarted = 1,
  kEnded = 2,
  kCancelled = 3,
};

std::string to_string(JobPhase p);

/// Accounting view of one job, built up by the lifecycle events.
struct JobAcct {
  int job_id = 0;
  std::uint32_t user_id = 0;
  std::uint32_t app_index = 0;
  std::uint64_t nodes = 0;
  double submit_s = 0.0;
  double walltime_est_s = 0.0;
  double start_s = -1.0;
  double end_s = -1.0;
  double runtime_s = 0.0;            ///< achieved wall-clock runtime
  double baseline_runtime_s = 0.0;   ///< equal-power-share expectation
  double node_hours = 0.0;
  double energy_j = 0.0;
  std::uint32_t requeues = 0;
  JobPhase phase = JobPhase::kSubmitted;

  /// Ran at least as fast as the equal-share baseline (ended jobs only).
  bool beat_equal_share() const {
    return phase == JobPhase::kEnded &&
           runtime_s <= baseline_runtime_s + 1e-6;
  }
};

/// Per-user rollup (the association index).
struct UserAcct {
  std::uint32_t user_id = 0;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_ended = 0;      ///< completed (cancellations excluded)
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t beat_equal_share = 0;
  double node_hours = 0.0;
  double energy_j = 0.0;
};

/// Payload handed to record_end.
struct EndInfo {
  double end_s = 0.0;
  double runtime_s = 0.0;
  double baseline_runtime_s = 0.0;
  double node_hours = 0.0;
  double energy_j = 0.0;
  bool cancelled = false;
};

class Store {
 public:
  /// Opens the store over `path` ("" = in-memory only), replaying any
  /// existing log into the indexes.
  explicit Store(const std::string& path = "");

  void record_submit(int job_id, std::uint32_t user_id,
                     std::uint32_t app_index, std::uint64_t nodes,
                     double submit_s, double walltime_est_s);
  void record_start(int job_id, double start_s);
  void record_end(int job_id, const EndInfo& info);
  void record_requeue(int job_id, double time_s);

  /// Publishes buffered appends to the file.
  void flush() { log_.flush(); }

  const JobAcct* job(int job_id) const;
  const UserAcct* user(std::uint32_t user_id) const;
  const std::unordered_map<int, JobAcct>& jobs() const { return jobs_; }
  const std::unordered_map<std::uint32_t, UserAcct>& users() const {
    return users_;
  }

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t ended() const { return ended_; }
  std::uint64_t cancelled() const { return cancelled_; }
  double total_node_hours() const { return total_node_hours_; }
  double total_energy_j() const { return total_energy_j_; }

  /// Fraction of ended jobs that beat the equal-share baseline (the
  /// Fig. 9-style fairness audit headline). 0 when nothing ended.
  double fraction_beating_equal_share() const {
    return ended_ == 0
               ? 0.0
               : static_cast<double>(beat_equal_share_) /
                     static_cast<double>(ended_);
  }

  const EventLog& log() const { return log_; }

 private:
  void apply(const std::uint8_t* payload, std::size_t size);
  void persist(const std::vector<std::uint8_t>& payload) {
    log_.append(payload);
  }

  EventLog log_;
  std::unordered_map<int, JobAcct> jobs_;
  std::unordered_map<std::uint32_t, UserAcct> users_;
  std::uint64_t submitted_ = 0;
  std::uint64_t ended_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t beat_equal_share_ = 0;
  double total_node_hours_ = 0.0;
  double total_energy_j_ = 0.0;
};

}  // namespace perq::acct
