#include "acct/event_log.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/require.hpp"

namespace perq::acct {
namespace {

constexpr char kMagic[8] = {'P', 'Q', 'A', 'C', 'C', 'T', '0', '1'};
constexpr std::size_t kHeaderBytes = 8;  // u32 len + u32 crc

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void write_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

EventLog::~EventLog() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void EventLog::open(const std::string& path, const ReplayFn& replay) {
  PERQ_REQUIRE(!opened_, "event log already open");
  opened_ = true;
  path_ = path;
  if (path_.empty()) return;  // in-memory mode

  // "a+b" creates the file when absent and never clobbers existing bytes.
  file_ = std::fopen(path_.c_str(), "a+b");
  PERQ_REQUIRE(file_ != nullptr,
               "cannot open accounting log " + path_ + ": " +
                   std::strerror(errno));

  // Scan phase: validate the magic, then replay records until the first
  // torn or corrupt one.
  std::rewind(file_);
  char magic[sizeof(kMagic)];
  const std::size_t got = std::fread(magic, 1, sizeof(magic), file_);
  long valid_end = 0;
  if (got == 0) {
    // Fresh log: stamp the magic.
    PERQ_REQUIRE(std::fwrite(kMagic, 1, sizeof(kMagic), file_) ==
                     sizeof(kMagic),
                 "cannot initialize accounting log " + path_);
    std::fflush(file_);
    return;
  }
  PERQ_REQUIRE(got == sizeof(magic) &&
                   std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               path_ + " is not a perq accounting log");
  valid_end = static_cast<long>(sizeof(kMagic));

  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint8_t header[kHeaderBytes];
    const std::size_t h = std::fread(header, 1, sizeof(header), file_);
    if (h != sizeof(header)) break;  // clean EOF or torn header
    const std::uint32_t len = read_le32(header);
    const std::uint32_t crc = read_le32(header + 4);
    if (len == 0 || len > kMaxPayload) break;  // corrupt length
    payload.resize(len);
    if (std::fread(payload.data(), 1, len, file_) != len) break;  // torn
    if (crc32(payload.data(), len) != crc) break;                 // corrupt
    if (replay) replay(payload.data(), len);
    ++replayed_count_;
    ++record_count_;
    valid_end += static_cast<long>(sizeof(header) + len);
  }

  // Truncate anything past the last intact record so the append position
  // is exactly the end of the valid prefix.
  std::fflush(file_);
  struct stat st{};
  PERQ_REQUIRE(::fstat(::fileno(file_), &st) == 0,
               "cannot stat accounting log " + path_);
  if (st.st_size != valid_end) {
    truncated_tail_ = true;
    PERQ_REQUIRE(::ftruncate(::fileno(file_), valid_end) == 0,
                 "cannot truncate torn tail of " + path_);
  }
  std::clearerr(file_);
  PERQ_REQUIRE(std::fseek(file_, 0, SEEK_END) == 0,
               "cannot seek accounting log " + path_);
}

void EventLog::append(const std::vector<std::uint8_t>& payload) {
  PERQ_REQUIRE(opened_, "event log not open");
  PERQ_REQUIRE(!payload.empty() && payload.size() <= kMaxPayload,
               "accounting record size out of range");
  ++record_count_;
  if (file_ == nullptr) return;  // in-memory mode
  std::uint8_t header[kHeaderBytes];
  write_le32(header, static_cast<std::uint32_t>(payload.size()));
  write_le32(header + 4, crc32(payload.data(), payload.size()));
  PERQ_REQUIRE(std::fwrite(header, 1, sizeof(header), file_) ==
                       sizeof(header) &&
                   std::fwrite(payload.data(), 1, payload.size(), file_) ==
                       payload.size(),
               "accounting log write failed: " + path_);
}

void EventLog::flush() {
  if (file_ != nullptr) {
    PERQ_REQUIRE(std::fflush(file_) == 0,
                 "accounting log flush failed: " + path_);
  }
}

}  // namespace perq::acct
