// Durable append-only event log: the storage engine under the accounting
// store (the slurmdbd side of the house).
//
// File layout:
//
//   "PQACCT01"                                    8-byte magic
//   [u32 len][u32 crc32(payload)][payload] ...    records, little-endian
//
// Appends are buffered stdio writes; flush() makes them visible to a
// reopening reader. Recovery is replay-on-open: open() scans the file,
// hands every intact payload to the caller's replay callback, and truncates
// the first torn or corrupt record and everything after it (a crash can
// only lose the suffix that was mid-write -- every prefix the scan accepts
// is exactly what a pre-crash reader saw). An empty path runs the log
// in-memory only: appends are counted but nothing is stored.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace perq::acct {

/// CRC-32 (IEEE 802.3, reflected) of a byte span.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

class EventLog {
 public:
  using ReplayFn = std::function<void(const std::uint8_t* payload,
                                      std::size_t size)>;

  /// Payloads above this are rejected on append and treated as corruption
  /// on replay (no legitimate accounting record comes close).
  static constexpr std::uint32_t kMaxPayload = 1u << 20;

  EventLog() = default;
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens (creating if absent) the log at `path`, replays every intact
  /// record into `replay`, and truncates any torn tail. Empty `path` =
  /// in-memory mode: nothing persisted, replay never called.
  void open(const std::string& path, const ReplayFn& replay);

  /// Appends one record (open() first). Buffered; flush() to publish.
  void append(const std::vector<std::uint8_t>& payload);

  void flush();

  bool persistent() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  /// Records accepted: replayed on open + appended since.
  std::uint64_t record_count() const { return record_count_; }
  /// Records recovered by the open() scan (diagnostics).
  std::uint64_t replayed_count() const { return replayed_count_; }
  /// True when open() found and cut a torn tail.
  bool truncated_tail() const { return truncated_tail_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool opened_ = false;
  std::uint64_t record_count_ = 0;
  std::uint64_t replayed_count_ = 0;
  bool truncated_tail_ = false;
};

}  // namespace perq::acct
