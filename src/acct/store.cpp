#include "acct/store.hpp"

#include "proto/wire.hpp"
#include "util/require.hpp"

namespace perq::acct {
namespace {

// Event type tags (wire format; do not renumber).
constexpr std::uint16_t kSubmit = 1;
constexpr std::uint16_t kStart = 2;
constexpr std::uint16_t kEnd = 3;
constexpr std::uint16_t kRequeue = 4;

}  // namespace

std::string to_string(JobPhase p) {
  switch (p) {
    case JobPhase::kSubmitted: return "submitted";
    case JobPhase::kStarted: return "started";
    case JobPhase::kEnded: return "ended";
    case JobPhase::kCancelled: return "cancelled";
  }
  return "unknown";
}

Store::Store(const std::string& path) {
  log_.open(path, [this](const std::uint8_t* payload, std::size_t size) {
    apply(payload, size);
  });
}

// Every record_* serializes the event, applies it to the indexes through
// the same code path replay uses, then persists the bytes -- so a reopened
// store can never disagree with the one that wrote the log.

void Store::record_submit(int job_id, std::uint32_t user_id,
                          std::uint32_t app_index, std::uint64_t nodes,
                          double submit_s, double walltime_est_s) {
  proto::WireWriter w;
  w.u16(kSubmit);
  w.i32(job_id);
  w.u32(user_id);
  w.u32(app_index);
  w.u64(nodes);
  w.f64(submit_s);
  w.f64(walltime_est_s);
  apply(w.data().data(), w.size());
  persist(w.data());
}

void Store::record_start(int job_id, double start_s) {
  proto::WireWriter w;
  w.u16(kStart);
  w.i32(job_id);
  w.f64(start_s);
  apply(w.data().data(), w.size());
  persist(w.data());
}

void Store::record_end(int job_id, const EndInfo& info) {
  proto::WireWriter w;
  w.u16(kEnd);
  w.i32(job_id);
  w.u8(info.cancelled ? 1 : 0);
  w.f64(info.end_s);
  w.f64(info.runtime_s);
  w.f64(info.baseline_runtime_s);
  w.f64(info.node_hours);
  w.f64(info.energy_j);
  apply(w.data().data(), w.size());
  persist(w.data());
}

void Store::record_requeue(int job_id, double time_s) {
  proto::WireWriter w;
  w.u16(kRequeue);
  w.i32(job_id);
  w.f64(time_s);
  apply(w.data().data(), w.size());
  persist(w.data());
}

void Store::apply(const std::uint8_t* payload, std::size_t size) {
  proto::WireReader r(payload, size);
  const std::uint16_t type = r.u16();
  switch (type) {
    case kSubmit: {
      JobAcct j;
      j.job_id = r.i32();
      j.user_id = r.u32();
      j.app_index = r.u32();
      j.nodes = r.u64();
      j.submit_s = r.f64();
      j.walltime_est_s = r.f64();
      PERQ_REQUIRE(r.exhausted(), "malformed accounting submit record");
      PERQ_REQUIRE(jobs_.find(j.job_id) == jobs_.end(),
                   "duplicate job id in accounting log");
      UserAcct& u = users_[j.user_id];
      u.user_id = j.user_id;
      ++u.jobs_submitted;
      ++submitted_;
      jobs_.emplace(j.job_id, j);
      break;
    }
    case kStart: {
      const int id = r.i32();
      const double start_s = r.f64();
      PERQ_REQUIRE(r.exhausted(), "malformed accounting start record");
      const auto it = jobs_.find(id);
      PERQ_REQUIRE(it != jobs_.end(), "start event for unknown job");
      if (it->second.start_s < 0.0) it->second.start_s = start_s;
      it->second.phase = JobPhase::kStarted;
      break;
    }
    case kEnd: {
      const int id = r.i32();
      const bool was_cancelled = r.u8() != 0;
      const double end_s = r.f64();
      const double runtime_s = r.f64();
      const double baseline_s = r.f64();
      const double node_hours = r.f64();
      const double energy_j = r.f64();
      PERQ_REQUIRE(r.exhausted(), "malformed accounting end record");
      const auto it = jobs_.find(id);
      PERQ_REQUIRE(it != jobs_.end(), "end event for unknown job");
      JobAcct& j = it->second;
      j.end_s = end_s;
      j.runtime_s = runtime_s;
      j.baseline_runtime_s = baseline_s;
      j.node_hours = node_hours;
      j.energy_j = energy_j;
      j.phase = was_cancelled ? JobPhase::kCancelled : JobPhase::kEnded;
      UserAcct& u = users_[j.user_id];
      u.node_hours += node_hours;
      u.energy_j += energy_j;
      total_node_hours_ += node_hours;
      total_energy_j_ += energy_j;
      if (was_cancelled) {
        ++u.jobs_cancelled;
        ++cancelled_;
      } else {
        ++u.jobs_ended;
        ++ended_;
        if (j.beat_equal_share()) {
          ++u.beat_equal_share;
          ++beat_equal_share_;
        }
      }
      break;
    }
    case kRequeue: {
      const int id = r.i32();
      r.f64();  // event time; the rollup only counts occurrences
      PERQ_REQUIRE(r.exhausted(), "malformed accounting requeue record");
      const auto it = jobs_.find(id);
      PERQ_REQUIRE(it != jobs_.end(), "requeue event for unknown job");
      ++it->second.requeues;
      it->second.phase = JobPhase::kSubmitted;
      break;
    }
    default:
      PERQ_REQUIRE(false, "unknown accounting record type");
  }
}

const JobAcct* Store::job(int job_id) const {
  const auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const UserAcct* Store::user(std::uint32_t user_id) const {
  const auto it = users_.find(user_id);
  return it == users_.end() ? nullptr : &it->second;
}

}  // namespace perq::acct
