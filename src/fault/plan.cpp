#include "fault/plan.hpp"

#include <cstdio>

namespace perq::fault {

std::string to_string(const FaultStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tx %llu  rx %llu  dropped %llu  truncated %llu  "
                "bit-flipped %llu  duplicated %llu  delayed %llu  "
                "reordered %llu  partitioned %llu  killed %llu",
                static_cast<unsigned long long>(s.tx_frames),
                static_cast<unsigned long long>(s.rx_frames),
                static_cast<unsigned long long>(s.dropped),
                static_cast<unsigned long long>(s.truncated),
                static_cast<unsigned long long>(s.bit_flipped),
                static_cast<unsigned long long>(s.duplicated),
                static_cast<unsigned long long>(s.delayed),
                static_cast<unsigned long long>(s.reordered),
                static_cast<unsigned long long>(s.partitioned),
                static_cast<unsigned long long>(s.killed));
  return buf;
}

}  // namespace perq::fault
