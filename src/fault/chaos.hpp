// Chaos harness: the full perqd loop (controller + plant over loopback)
// driven under a scripted or seeded-random fault schedule, with run-level
// safety invariants checked every control tick.
//
// Invariants (violations are recorded, not thrown, so one run reports every
// breach):
//   * Budget: the watts committed to running jobs never exceed the cluster
//     power budget, and the budget row the controller optimized plus the
//     watts held for stale jobs stays within it too -- held jobs are fenced
//     off, never double-spent.
//   * Box: every cap in a delivered plan and every applied cap lies within
//     [cap_min, TDP] (0 is the protocol's explicit "hold" sentinel).
//   * Liveness accounting: a tick without a plan is a held tick; the engine
//     still advances (the plant never blocks on the controller).
//
// The per-tick cap trajectory is recorded so tests can compare a faulted
// run against its fault-free twin and assert re-convergence after the
// fault window: reconvergence_tick() finds the first tick from which the
// two trajectories stay within a tolerance for good.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/perq_policy.hpp"
#include "core/robustness.hpp"
#include "daemon/controller.hpp"
#include "daemon/experiment.hpp"
#include "fault/plan.hpp"
#include "hier/arbiter_daemon.hpp"

namespace perq::fault {

/// Scripted agent-process failures (the faults that live above the
/// transport: a hung agent process, and its later rejoin with a fresh
/// connection).
struct AgentEvent {
  enum class Kind { kHang, kRejoin };
  std::uint64_t tick = 0;
  std::size_t agent = 0;
  Kind kind = Kind::kHang;
};

struct ChaosConfig {
  core::EngineConfig engine;
  daemon::ControllerConfig controller;
  daemon::PlantConfig plant;
  std::uint64_t fault_seed = 1;
  /// Schedule for every agent connection without an explicit entry.
  ConnectionSchedule default_schedule;
  /// Per-connection-index schedules (index = dial order: agent i dials
  /// i-th; reconnects dial later indices).
  std::vector<std::pair<std::size_t, ConnectionSchedule>> schedules;
  std::vector<AgentEvent> events;
  /// Stop after this many ticks (0 = run until the engine is done).
  std::uint64_t max_ticks = 0;
};

/// One control tick of the run, as observed at the plant.
struct TickRecord {
  std::uint64_t tick = 0;
  bool plan_arrived = false;
  double committed_w = 0.0;     ///< watts committed to running jobs
  double budget_total_w = 0.0;  ///< cluster budget at this tick
  /// Applied per-node cap of every running job, keyed by job id (the
  /// trajectory the re-convergence comparison runs over).
  std::vector<std::pair<int, double>> caps_by_job;
  /// Hierarchical runs only: the arbiter's grants (indexed by domain) as of
  /// this tick, so tests can assert conservation over the whole history.
  std::vector<double> grants_w;
};

struct ChaosReport {
  core::RunResult result;
  std::vector<std::string> violations;  ///< empty <=> all invariants held
  std::vector<TickRecord> history;
  core::RobustnessCounters controller_counters;
  core::RobustnessCounters plant_counters;
  FaultStats faults;
  std::uint64_t ticks = 0;
  std::uint64_t held_ticks = 0;  ///< ticks the plant held previous caps
};

/// Runs the full daemon experiment under the configured fault schedule.
/// Deterministic: same config + same policy construction => same report,
/// field for field. The policy must match the engine's sizing (same
/// contract as run_loopback_daemon_experiment).
ChaosReport run_chaos(const ChaosConfig& cfg, core::PerqPolicy& policy);

/// Chaos over the hierarchical deployment: K domain controllers + one
/// arbiter + the multi-address plant, all over the fault-injecting
/// transport. Connection dial order (and hence schedule indexing): the K
/// controllers dial the arbiter first -- index d is domain d's arbiter
/// uplink -- then the plant's agents dial their controllers (index
/// domains + i for agent i). Partitioning index d therefore severs one
/// domain from the arbiter while its agents keep running: the
/// grant-fencing scenario.
struct DomainChaosConfig {
  core::EngineConfig engine;
  daemon::ControllerConfig controller;
  hier::ArbiterDaemonConfig arbiter;
  daemon::PlantConfig plant;
  std::size_t domains = 2;
  std::uint64_t fault_seed = 1;
  ConnectionSchedule default_schedule;
  std::vector<std::pair<std::size_t, ConnectionSchedule>> schedules;
  /// Sugar: black out domain d's arbiter uplink for the window (appended
  /// to whatever schedule index d already has).
  std::vector<std::pair<std::uint32_t, TickWindow>> domain_partitions;
  std::vector<AgentEvent> events;
  std::uint64_t max_ticks = 0;
};

struct DomainChaosReport {
  core::RunResult result;
  std::vector<std::string> violations;  ///< empty <=> all invariants held
  std::vector<TickRecord> history;
  /// Per-domain controller counters, indexed by domain.
  std::vector<core::RobustnessCounters> controller_counters;
  /// The arbiter's cross-domain aggregate (newest report per domain plus
  /// its own frame screening) -- the satellite accounting view.
  core::RobustnessCounters aggregated_counters;
  core::RobustnessCounters plant_counters;
  FaultStats faults;
  std::uint64_t ticks = 0;
  std::uint64_t held_ticks = 0;
  std::uint64_t arbiter_decisions = 0;
  std::vector<double> final_grants_w;
  double final_fenced_w = 0.0;
};

/// Runs the K-domain deployment under faults, asserting on every tick --
/// in addition to run_chaos's budget/box invariants -- that the grants the
/// arbiter has outstanding (live + fenced + cold-start reserves) sum to no
/// more than the cluster budget they were carved from. `policies` must
/// hold exactly `cfg.domains` PerqPolicy instances.
DomainChaosReport run_domain_chaos(
    const DomainChaosConfig& cfg,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies);

/// Scripted runtime re-parent: at the top of `tick`, domain `domain`'s
/// controller is detached from its current mid-level arbiter (sending the
/// kDomainLeaving release) and re-attached under `new_mid`'s spare slot.
struct ReparentEvent {
  std::uint64_t tick = 0;
  std::uint32_t domain = 0;
  std::uint32_t new_mid = 0;
};

/// Chaos over the depth-2 arbiter tree: one root ArbiterDaemon over `mids`
/// stacked mid arbiters, each parenting the domain controllers d with
/// d % mids == m. Every mid is built with one spare child slot so scripted
/// re-parents have somewhere to land (the slot's cold-start reserve is the
/// price of admission capacity).
///
/// Connection dial order (and hence schedule indexing): the mids dial the
/// root first -- index m is mid m's root uplink, so partitioning it severs
/// a whole subtree (the subtree-partition scenario) -- then the domain
/// controllers dial their mids (index mids + d), then the plant's agents
/// dial their controllers (mids + domains + i). Re-parent dials take later
/// indices.
struct TreeChaosConfig {
  core::EngineConfig engine;
  daemon::ControllerConfig controller;
  hier::ArbiterDaemonConfig arbiter;  ///< shared by the root and every mid
  daemon::PlantConfig plant;
  std::size_t domains = 4;
  std::size_t mids = 2;
  std::uint64_t fault_seed = 1;
  ConnectionSchedule default_schedule;
  std::vector<std::pair<std::size_t, ConnectionSchedule>> schedules;
  /// Sugar: black out mid m's root uplink for the window (appended to
  /// whatever schedule index m already has) -- the subtree partition.
  std::vector<std::pair<std::uint32_t, TickWindow>> subtree_partitions;
  /// Sugar: black out domain d's mid uplink (schedule index mids + d).
  std::vector<std::pair<std::uint32_t, TickWindow>> domain_partitions;
  std::vector<ReparentEvent> reparents;
  /// Per-domain tenant terms (sla_floor_w / priority_weight); empty means
  /// defaults. Shares and tree paths are filled by the harness.
  std::vector<daemon::DomainAttachment> leaf_tenants;
  std::vector<AgentEvent> events;
  std::uint64_t max_ticks = 0;
};

struct TreeChaosReport {
  core::RunResult result;
  std::vector<std::string> violations;  ///< empty <=> all invariants held
  std::vector<TickRecord> history;      ///< grants_w = root grants per mid
  std::vector<core::RobustnessCounters> controller_counters;
  /// The root's cluster-wide aggregate: every mid flattens its own subtree
  /// view into its upward report, so this covers all levels.
  core::RobustnessCounters aggregated_counters;
  core::RobustnessCounters plant_counters;
  FaultStats faults;
  std::uint64_t ticks = 0;
  std::uint64_t held_ticks = 0;
  std::uint64_t root_decisions = 0;
  std::vector<std::uint64_t> mid_decisions;
  std::vector<double> root_grants_w;
  std::vector<std::vector<double>> mid_grants_w;
  std::uint64_t reparents_executed = 0;
  /// Worst sum(grants) + reserved - scope over every decision at every
  /// level (scope captured at decide time, so no lag slack is needed).
  double max_level_overdraw_w = 0.0;
};

/// Runs the depth-2 tree deployment under faults. Per-tick invariants, on
/// top of run_chaos's budget/box checks:
///   * conservation at every level -- each arbiter's grants + cold-start
///     reserves fit the scope it divided (root: cluster budget; mid: the
///     parent grant it held at decide time, static share before that);
///   * tenant SLA fairness -- no live child sits below its (capacity-
///     clipped) SLA floor while a live sibling holds more than the equal
///     share of the same scope;
///   * re-parent hygiene -- from two ticks after a scripted re-parent, the
///     old parent's slot for the moved domain holds zero watts (released,
///     not fenced), so the subtree never draws from two parents.
TreeChaosReport run_tree_chaos(
    const TreeChaosConfig& cfg,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies);

/// Chaos over the warm-standby HA deployment: one primary controller
/// replicating every tick's canonical inputs to a standby, with a scripted
/// primary crash (or partition) and a standby takeover mid-run.
///
/// Connection dial order (and hence schedule indexing): the primary dials
/// the standby first -- index 0 is the replication link -- then the plant's
/// agents dial the primary (index 1 + i for agent i); reconnects and
/// failover dials take later indices. `partition_primary` is sugar that
/// blacks out indices 0 .. agents (the replication link plus every initial
/// agent connection) for the window: the primary stays alive but
/// unreachable -- the split-brain scenario, where it later resumes
/// broadcasting with a stale epoch and must be fenced.
struct FailoverChaosConfig {
  core::EngineConfig engine;
  daemon::ControllerConfig controller;  ///< shared by primary and standby
  daemon::PlantConfig plant;
  std::uint64_t fault_seed = 1;
  ConnectionSchedule default_schedule;
  std::vector<std::pair<std::size_t, ConnectionSchedule>> schedules;
  std::vector<AgentEvent> events;
  std::uint64_t max_ticks = 0;
  /// Destroy the primary outright at the top of this tick: its listener and
  /// every session die, the crash path. kNever disables.
  std::uint64_t kill_primary_at_tick = kNever;
  /// Black out every initial primary link for the window instead of killing
  /// the process (see above). begin >= end disables.
  TickWindow partition_primary{0, 0};
  /// Takeover detector: promote the standby once it has replayed no new
  /// replicated decide for this many consecutive planless ticks.
  std::uint64_t takeover_after_silent_ticks = 2;
  /// Tight handover: kill + promote + re-dial every agent to the standby at
  /// the top of kill_primary_at_tick, before that tick runs. Removes the
  /// detection gap entirely, so the whole cap trajectory is bit-identical
  /// to a crash-free run of the same seed -- the acceptance-criterion mode.
  bool tight_handover = false;
  /// Scripted re-dials of the *original primary* address (tick, agent): the
  /// deposed-primary fencing scenario -- after takeover the old primary,
  /// still alive behind a healed partition, announces its stale epoch and
  /// the agent must reject the connection (counted, never applied).
  std::vector<std::pair<std::uint64_t, std::size_t>> redial_primary;
};

struct FailoverChaosReport {
  core::RunResult result;
  std::vector<std::string> violations;  ///< empty <=> all invariants held
  std::vector<TickRecord> history;
  core::RobustnessCounters primary_counters;  ///< as of the kill (or end)
  core::RobustnessCounters standby_counters;
  core::RobustnessCounters plant_counters;
  FaultStats faults;
  std::uint64_t ticks = 0;
  std::uint64_t held_ticks = 0;
  std::uint64_t promoted_at_tick = kNever;  ///< kNever: never promoted
  std::uint64_t replicated_decides = 0;  ///< standby's replayed decides
  std::uint64_t repl_divergence = 0;     ///< standby plan-crc mismatches
  std::uint64_t repl_rejected = 0;       ///< malformed replication frames
  std::uint64_t stale_epoch_frames = 0;  ///< frames fenced by the agents
  std::uint64_t standby_epoch = 0;       ///< standby's epoch at end of run
};

/// Runs the primary+standby deployment under the configured failure script,
/// checking run_chaos's per-tick budget/box invariants across the handover
/// plus the fail-safe decay law: once a group has been planless past
/// PlantConfig::failsafe_after_ticks, its held caps must follow
/// cap' <= floor + (cap - floor) * decay -- drifting to the safe floor,
/// never rising. The two policies must be identically configured (the
/// standby replays the primary's decisions through its own instance).
FailoverChaosReport run_failover_chaos(const FailoverChaosConfig& cfg,
                                       core::PerqPolicy& primary_policy,
                                       core::PerqPolicy& standby_policy);

/// First tick T >= `from` such that from T on, every tick's caps in
/// `faulted` match the same tick/job in `baseline` within `tol_w` watts
/// (jobs missing on either side at a tick count as divergence). Returns
/// kNever when the runs never re-converge (or diverge again later).
std::uint64_t reconvergence_tick(const std::vector<TickRecord>& faulted,
                                 const std::vector<TickRecord>& baseline,
                                 std::uint64_t from, double tol_w);

/// Longest run of consecutive ticks inside `range` where the committed
/// watts of `faulted` and `baseline` differ by more than `tol_w` (a tick
/// missing from either history counts as divergent). Per-job comparison is
/// too strict for a saturated machine -- a fault that shifts one job
/// completion by a tick offsets every later start, so trajectories never
/// re-match job for job -- but sustained power divergence is the control-
/// level signature of a fault, and it must end with the fault window:
/// after re-convergence only isolated one-tick blips remain, where the two
/// runs pass their (offset) job transitions.
std::uint64_t longest_power_divergence_streak(
    const std::vector<TickRecord>& faulted,
    const std::vector<TickRecord>& baseline, TickWindow range, double tol_w);

}  // namespace perq::fault
