#include "fault/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "apps/app_model.hpp"
#include "fault/faulty_transport.hpp"
#include "net/loopback.hpp"
#include "util/require.hpp"

namespace perq::fault {

namespace {

std::string tick_msg(std::uint64_t tick, const char* what, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "tick %llu: %s (%.3f vs %.3f)",
                static_cast<unsigned long long>(tick), what, a, b);
  return buf;
}

}  // namespace

ChaosReport run_chaos(const ChaosConfig& cfg, core::PerqPolicy& policy) {
  net::LoopbackTransport loop;
  FaultPlan plan(cfg.fault_seed);
  plan.set_default_schedule(cfg.default_schedule);
  for (const auto& [index, sched] : cfg.schedules) {
    plan.set_schedule(index, sched);
  }
  FaultyTransport transport(loop, plan);

  const std::string address = "perqd";
  daemon::PerqController controller(transport.listen(address), policy,
                                    cfg.controller);
  daemon::DaemonPlant plant(cfg.engine, transport, address, cfg.plant);
  controller.pump();

  ChaosReport report;
  const auto& spec = apps::node_power_spec();
  const double budget_w = plant.engine().cluster().power_budget_w();

  std::uint64_t tick = 0;
  while (!plant.done() && (cfg.max_ticks == 0 || tick < cfg.max_ticks)) {
    plan.set_tick(tick);

    for (const AgentEvent& e : cfg.events) {
      if (e.tick != tick || e.agent >= plant.agent_count()) continue;
      if (e.kind == AgentEvent::Kind::kHang) {
        plant.agent(e.agent).hang();
      } else {
        try {
          if (auto conn = transport.connect(address)) {
            plant.agent(e.agent).reconnect(std::move(conn));
          }
        } catch (const precondition_error&) {
          // Listener gone; the regular reconnect path keeps retrying.
        }
      }
    }

    const bool planned = plant.step([&controller] { controller.service(); });
    if (!planned) ++report.held_ticks;
    // Re-dial crashed agents every tick (a single dead agent does not stop
    // plans from arriving via the others, so held ticks alone would never
    // trigger the reconnect path). Backoff pacing lives in the plant.
    plant.reconnect_lost(transport, address);

    // --- run-level safety invariants, evaluated every tick ---
    TickRecord rec;
    rec.tick = tick;
    rec.plan_arrived = planned;
    rec.budget_total_w = budget_w;
    std::map<int, double> nodes_by_job;
    for (const sched::Job* job : plant.engine().running()) {
      const double cap = job->last_cap_w();
      const double nodes = static_cast<double>(job->spec().nodes);
      nodes_by_job[job->spec().id] = nodes;
      rec.committed_w += cap * nodes;
      rec.caps_by_job.emplace_back(job->spec().id, cap);
      if (cap != 0.0 && (!std::isfinite(cap) || cap < spec.cap_min - 1e-6 ||
                         cap > spec.tdp + 1e-6)) {
        report.violations.push_back(
            tick_msg(tick, "applied cap outside [cap_min, TDP]", cap,
                     spec.tdp));
      }
    }
    if (rec.committed_w > budget_w + 1e-3) {
      report.violations.push_back(
          tick_msg(tick, "committed watts exceed cluster budget",
                   rec.committed_w, budget_w));
    }
    if (planned) {
      // The plan the plant accepted this tick is the controller's latest.
      const proto::CapPlan& p = controller.last_plan();
      double plan_w = 0.0;
      for (const proto::CapEntry& e : p.entries) {
        if (e.cap_w != 0.0 &&
            (!std::isfinite(e.cap_w) || e.cap_w < spec.cap_min - 1e-6 ||
             e.cap_w > spec.tdp + 1e-6)) {
          report.violations.push_back(tick_msg(
              tick, "delivered plan cap outside [cap_min, TDP]", e.cap_w,
              spec.tdp));
        }
        const auto it = nodes_by_job.find(e.job_id);
        if (it != nodes_by_job.end()) plan_w += e.cap_w * it->second;
      }
      if (plan_w > budget_w + 1e-3) {
        report.violations.push_back(tick_msg(
            tick, "delivered plan sums above cluster budget", plan_w,
            budget_w));
      }
      // Held (stale) watts are fenced off the optimized budget row, never
      // double-spent: row + held must still fit the budget.
      const auto& stats = controller.last_stats();
      if (stats.budget_row_w + stats.held_w > budget_w + 1e-3) {
        report.violations.push_back(
            tick_msg(tick, "budget row + held watts exceed budget",
                     stats.budget_row_w + stats.held_w, budget_w));
      }
    }
    report.history.push_back(std::move(rec));
    ++tick;
  }

  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  controller.pump();

  report.result = plant.finish(policy.name());
  report.controller_counters = controller.counters();
  report.plant_counters = plant.counters();
  report.faults = plan.stats();
  report.ticks = tick;
  return report;
}

std::uint64_t reconvergence_tick(const std::vector<TickRecord>& faulted,
                                 const std::vector<TickRecord>& baseline,
                                 std::uint64_t from, double tol_w) {
  std::map<std::uint64_t, const TickRecord*> base;
  for (const TickRecord& r : baseline) base[r.tick] = &r;
  if (faulted.empty() || baseline.empty()) return kNever;
  const std::uint64_t end =
      std::min(faulted.back().tick, baseline.back().tick);

  bool any_divergence = false;
  std::uint64_t last_divergence = 0;
  for (const TickRecord& f : faulted) {
    if (f.tick < from || f.tick > end) continue;
    const auto it = base.find(f.tick);
    bool diverged = it == base.end();
    if (!diverged) {
      const TickRecord& b = *it->second;
      std::map<int, double> bcaps(b.caps_by_job.begin(), b.caps_by_job.end());
      if (f.caps_by_job.size() != bcaps.size()) diverged = true;
      for (const auto& [id, cap] : f.caps_by_job) {
        const auto bit = bcaps.find(id);
        if (bit == bcaps.end() || std::abs(cap - bit->second) > tol_w) {
          diverged = true;
          break;
        }
      }
    }
    if (diverged) {
      any_divergence = true;
      last_divergence = std::max(last_divergence, f.tick);
    }
  }
  if (!any_divergence) return from;
  return last_divergence >= end ? kNever : last_divergence + 1;
}

std::uint64_t longest_power_divergence_streak(
    const std::vector<TickRecord>& faulted,
    const std::vector<TickRecord>& baseline, TickWindow range, double tol_w) {
  std::map<std::uint64_t, const TickRecord*> base;
  for (const TickRecord& r : baseline) base[r.tick] = &r;
  std::uint64_t streak = 0, longest = 0;
  std::uint64_t prev_tick = kNever;
  for (const TickRecord& f : faulted) {
    if (!range.contains(f.tick)) continue;
    const auto it = base.find(f.tick);
    const bool diverged =
        it == base.end() ||
        std::abs(f.committed_w - it->second->committed_w) > tol_w;
    if (diverged) {
      streak = (prev_tick != kNever && f.tick == prev_tick + 1) ? streak + 1 : 1;
      longest = std::max(longest, streak);
      prev_tick = f.tick;
    } else {
      streak = 0;
      prev_tick = kNever;
    }
  }
  return longest;
}

}  // namespace perq::fault
