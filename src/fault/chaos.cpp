#include "fault/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <tuple>

#include "apps/app_model.hpp"
#include "fault/faulty_transport.hpp"
#include "net/loopback.hpp"
#include "util/require.hpp"

namespace perq::fault {

namespace {

std::string tick_msg(std::uint64_t tick, const char* what, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "tick %llu: %s (%.3f vs %.3f)",
                static_cast<unsigned long long>(tick), what, a, b);
  return buf;
}

}  // namespace

ChaosReport run_chaos(const ChaosConfig& cfg, core::PerqPolicy& policy) {
  net::LoopbackTransport loop;
  FaultPlan plan(cfg.fault_seed);
  plan.set_default_schedule(cfg.default_schedule);
  for (const auto& [index, sched] : cfg.schedules) {
    plan.set_schedule(index, sched);
  }
  FaultyTransport transport(loop, plan);

  const std::string address = "perqd";
  daemon::PerqController controller(transport.listen(address), policy,
                                    cfg.controller);
  daemon::DaemonPlant plant(cfg.engine, transport, address, cfg.plant);
  controller.pump();

  ChaosReport report;
  const auto& spec = apps::node_power_spec();
  const double budget_w = plant.engine().cluster().power_budget_w();

  std::uint64_t tick = 0;
  while (!plant.done() && (cfg.max_ticks == 0 || tick < cfg.max_ticks)) {
    plan.set_tick(tick);

    for (const AgentEvent& e : cfg.events) {
      if (e.tick != tick || e.agent >= plant.agent_count()) continue;
      if (e.kind == AgentEvent::Kind::kHang) {
        plant.agent(e.agent).hang();
      } else {
        try {
          if (auto conn = transport.connect(address)) {
            plant.agent(e.agent).reconnect(std::move(conn));
          }
        } catch (const precondition_error&) {
          // Listener gone; the regular reconnect path keeps retrying.
        }
      }
    }

    const bool planned = plant.step([&controller] { controller.service(); });
    if (!planned) ++report.held_ticks;
    // Re-dial crashed agents every tick (a single dead agent does not stop
    // plans from arriving via the others, so held ticks alone would never
    // trigger the reconnect path). Backoff pacing lives in the plant.
    plant.reconnect_lost(transport, address);

    // --- run-level safety invariants, evaluated every tick ---
    TickRecord rec;
    rec.tick = tick;
    rec.plan_arrived = planned;
    rec.budget_total_w = budget_w;
    std::map<int, double> nodes_by_job;
    for (const sched::Job* job : plant.engine().running()) {
      const double cap = job->last_cap_w();
      const double nodes = static_cast<double>(job->spec().nodes);
      nodes_by_job[job->spec().id] = nodes;
      rec.committed_w += cap * nodes;
      rec.caps_by_job.emplace_back(job->spec().id, cap);
      if (cap != 0.0 && (!std::isfinite(cap) || cap < spec.cap_min - 1e-6 ||
                         cap > spec.tdp + 1e-6)) {
        report.violations.push_back(
            tick_msg(tick, "applied cap outside [cap_min, TDP]", cap,
                     spec.tdp));
      }
    }
    if (rec.committed_w > budget_w + 1e-3) {
      report.violations.push_back(
          tick_msg(tick, "committed watts exceed cluster budget",
                   rec.committed_w, budget_w));
    }
    if (planned) {
      // The plan the plant accepted this tick is the controller's latest.
      const proto::CapPlan& p = controller.last_plan();
      double plan_w = 0.0;
      for (const proto::CapEntry& e : p.entries) {
        if (e.cap_w != 0.0 &&
            (!std::isfinite(e.cap_w) || e.cap_w < spec.cap_min - 1e-6 ||
             e.cap_w > spec.tdp + 1e-6)) {
          report.violations.push_back(tick_msg(
              tick, "delivered plan cap outside [cap_min, TDP]", e.cap_w,
              spec.tdp));
        }
        const auto it = nodes_by_job.find(e.job_id);
        if (it != nodes_by_job.end()) plan_w += e.cap_w * it->second;
      }
      if (plan_w > budget_w + 1e-3) {
        report.violations.push_back(tick_msg(
            tick, "delivered plan sums above cluster budget", plan_w,
            budget_w));
      }
      // Held (stale) watts are fenced off the optimized budget row, never
      // double-spent: row + held must still fit the budget.
      const auto& stats = controller.last_stats();
      if (stats.budget_row_w + stats.held_w > budget_w + 1e-3) {
        report.violations.push_back(
            tick_msg(tick, "budget row + held watts exceed budget",
                     stats.budget_row_w + stats.held_w, budget_w));
      }
    }
    report.history.push_back(std::move(rec));
    ++tick;
  }

  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  controller.pump();

  report.result = plant.finish(policy.name());
  report.controller_counters = controller.counters();
  report.plant_counters = plant.counters();
  report.faults = plan.stats();
  report.ticks = tick;
  return report;
}

DomainChaosReport run_domain_chaos(
    const DomainChaosConfig& cfg,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies) {
  PERQ_REQUIRE(cfg.domains >= 1, "need at least one domain");
  PERQ_REQUIRE(policies.size() == cfg.domains,
               "need exactly one policy per domain controller");

  net::LoopbackTransport loop;
  FaultPlan plan(cfg.fault_seed);
  plan.set_default_schedule(cfg.default_schedule);
  for (const auto& [index, sched] : cfg.schedules) {
    plan.set_schedule(index, sched);
  }
  for (const auto& [domain, window] : cfg.domain_partitions) {
    PERQ_REQUIRE(domain < cfg.domains, "partition for unknown domain");
    ConnectionSchedule sched = plan.schedule_for(domain);
    sched.partitions.push_back(window);
    plan.set_schedule(domain, sched);
  }
  FaultyTransport transport(loop, plan);

  const std::string arbiter_address = "perq-arbiter";
  hier::ArbiterDaemon arbiter(transport.listen(arbiter_address), cfg.domains,
                              cfg.arbiter);
  std::vector<std::unique_ptr<daemon::PerqController>> controllers;
  std::vector<std::string> addresses;
  for (std::size_t d = 0; d < cfg.domains; ++d) {
    addresses.push_back("perqd-" + std::to_string(d));
    controllers.push_back(std::make_unique<daemon::PerqController>(
        transport.listen(addresses.back()), *policies[d], cfg.controller));
    // Dialed before any agent: connection index d is domain d's uplink.
    controllers.back()->attach_arbiter(transport.connect(arbiter_address),
                                       static_cast<std::uint32_t>(d),
                                       static_cast<std::uint32_t>(cfg.domains));
  }
  daemon::DaemonPlant plant(cfg.engine, transport, addresses, cfg.plant);
  for (auto& c : controllers) c->pump();

  DomainChaosReport report;
  const auto& spec = apps::node_power_spec();
  const double budget_w = plant.engine().cluster().power_budget_w();
  const auto service = [&] {
    for (auto& c : controllers) c->service();
    arbiter.service();
  };

  std::uint64_t tick = 0;
  while (!plant.done() && (cfg.max_ticks == 0 || tick < cfg.max_ticks)) {
    plan.set_tick(tick);

    for (const AgentEvent& e : cfg.events) {
      if (e.tick != tick || e.agent >= plant.agent_count()) continue;
      if (e.kind == AgentEvent::Kind::kHang) {
        plant.agent(e.agent).hang();
      } else {
        try {
          if (auto conn =
                  transport.connect(addresses[e.agent % cfg.domains])) {
            plant.agent(e.agent).reconnect(std::move(conn));
          }
        } catch (const precondition_error&) {
          // Listener gone; the regular reconnect path keeps retrying.
        }
      }
    }

    const bool planned = plant.step(service);
    if (!planned) ++report.held_ticks;
    plant.reconnect_lost(transport, addresses);

    // --- run-level safety invariants, evaluated every tick ---
    TickRecord rec;
    rec.tick = tick;
    rec.plan_arrived = planned;
    rec.budget_total_w = budget_w;
    for (const sched::Job* job : plant.engine().running()) {
      const double cap = job->last_cap_w();
      const double nodes = static_cast<double>(job->spec().nodes);
      rec.committed_w += cap * nodes;
      rec.caps_by_job.emplace_back(job->spec().id, cap);
      if (cap != 0.0 && (!std::isfinite(cap) || cap < spec.cap_min - 1e-6 ||
                         cap > spec.tdp + 1e-6)) {
        report.violations.push_back(
            tick_msg(tick, "applied cap outside [cap_min, TDP]", cap,
                     spec.tdp));
      }
    }
    if (rec.committed_w > budget_w + 1e-3) {
      report.violations.push_back(
          tick_msg(tick, "committed watts exceed cluster budget",
                   rec.committed_w, budget_w));
    }
    // Grant conservation, the hierarchical invariant: everything the
    // arbiter has outstanding -- live grants, grants fenced for silent
    // domains, and the static reserves for domains that never reported --
    // fits the cluster budget those grants were carved from.
    if (arbiter.decisions() > 0) {
      rec.grants_w = arbiter.grants_w();
      double outstanding_w = arbiter.reserved_w();
      for (const double g : rec.grants_w) outstanding_w += g;
      if (outstanding_w > arbiter.cluster_budget_w() + 1e-3) {
        report.violations.push_back(
            tick_msg(tick, "domain grants exceed cluster budget",
                     outstanding_w, arbiter.cluster_budget_w()));
      }
    }
    // Each domain that decided this tick stayed within its own scope:
    // optimized row + held watts fit the grant it ran under.
    for (const auto& c : controllers) {
      const auto& stats = c->last_stats();
      if (stats.tick != tick) continue;
      if (stats.budget_row_w + stats.held_w > stats.granted_w + 1e-3) {
        report.violations.push_back(
            tick_msg(tick, "domain budget row + held watts exceed grant",
                     stats.budget_row_w + stats.held_w, stats.granted_w));
      }
    }
    report.history.push_back(std::move(rec));
    ++tick;
  }

  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  for (auto& c : controllers) c->pump();
  arbiter.pump();

  report.result = plant.finish(
      cfg.domains == 1 ? "PERQ" : "PERQ-HIER" + std::to_string(cfg.domains));
  report.controller_counters.reserve(controllers.size());
  for (const auto& c : controllers) {
    report.controller_counters.push_back(c->counters());
  }
  report.aggregated_counters = arbiter.aggregated_counters();
  report.plant_counters = plant.counters();
  report.faults = plan.stats();
  report.ticks = tick;
  report.arbiter_decisions = arbiter.decisions();
  report.final_grants_w = arbiter.grants_w();
  report.final_fenced_w = arbiter.fenced_w();
  return report;
}

TreeChaosReport run_tree_chaos(
    const TreeChaosConfig& cfg,
    std::vector<std::unique_ptr<core::PerqPolicy>>& policies) {
  PERQ_REQUIRE(cfg.domains >= 1, "need at least one domain");
  PERQ_REQUIRE(cfg.mids >= 1 && cfg.mids <= cfg.domains,
               "need between 1 and `domains` mid arbiters");
  PERQ_REQUIRE(policies.size() == cfg.domains,
               "need exactly one policy per domain controller");
  PERQ_REQUIRE(cfg.leaf_tenants.empty() ||
                   cfg.leaf_tenants.size() == cfg.domains,
               "leaf_tenants must be empty or one entry per domain");

  net::LoopbackTransport loop;
  FaultPlan plan(cfg.fault_seed);
  plan.set_default_schedule(cfg.default_schedule);
  for (const auto& [index, sched] : cfg.schedules) {
    plan.set_schedule(index, sched);
  }
  for (const auto& [mid, window] : cfg.subtree_partitions) {
    PERQ_REQUIRE(mid < cfg.mids, "subtree partition for unknown mid");
    ConnectionSchedule sched = plan.schedule_for(mid);
    sched.partitions.push_back(window);
    plan.set_schedule(mid, sched);
  }
  for (const auto& [domain, window] : cfg.domain_partitions) {
    PERQ_REQUIRE(domain < cfg.domains, "partition for unknown domain");
    const std::size_t index = cfg.mids + domain;
    ConnectionSchedule sched = plan.schedule_for(index);
    sched.partitions.push_back(window);
    plan.set_schedule(index, sched);
  }
  FaultyTransport transport(loop, plan);

  // Leaf d starts under mid d % mids as child d / mids; every mid carries
  // one spare slot (capacity kids + 1) for scripted re-parents, so the
  // moved controller lands on a fresh domain id instead of colliding.
  std::vector<std::size_t> kids(cfg.mids, 0);
  for (std::size_t d = 0; d < cfg.domains; ++d) ++kids[d % cfg.mids];

  const std::string root_address = "perq-root";
  hier::ArbiterDaemon root(transport.listen(root_address), cfg.mids,
                           cfg.arbiter);
  std::vector<std::unique_ptr<hier::ArbiterDaemon>> mid_daemons;
  std::vector<std::string> mid_addresses;
  for (std::size_t m = 0; m < cfg.mids; ++m) {
    mid_addresses.push_back("perq-mid-" + std::to_string(m));
    mid_daemons.push_back(std::make_unique<hier::ArbiterDaemon>(
        transport.listen(mid_addresses.back()), kids[m] + 1, cfg.arbiter));
    daemon::DomainAttachment att;
    att.static_share = 1.0 / static_cast<double>(cfg.mids);
    // Dialed before any controller: connection index m is mid m's uplink.
    att.tree_path = {0u, static_cast<std::uint32_t>(1 + m)};
    mid_daemons.back()->attach_parent(transport.connect(root_address),
                                      static_cast<std::uint32_t>(m),
                                      static_cast<std::uint32_t>(cfg.mids),
                                      std::move(att));
  }

  const auto leaf_attachment = [&](std::size_t d, std::size_t m) {
    daemon::DomainAttachment att;
    if (!cfg.leaf_tenants.empty()) att = cfg.leaf_tenants[d];
    att.static_share =
        1.0 / static_cast<double>(cfg.mids * (kids[m] + 1));
    att.parent_path = {0u, static_cast<std::uint32_t>(1 + m)};
    att.tree_path = {0u, static_cast<std::uint32_t>(1 + m),
                     static_cast<std::uint32_t>(1 + cfg.mids + d)};
    return att;
  };

  std::vector<std::unique_ptr<daemon::PerqController>> controllers;
  std::vector<std::string> addresses;
  /// domain -> (mid, local child id), kept current across re-parents.
  std::vector<std::pair<std::size_t, std::size_t>> where(cfg.domains);
  for (std::size_t d = 0; d < cfg.domains; ++d) {
    addresses.push_back("perqd-" + std::to_string(d));
    controllers.push_back(std::make_unique<daemon::PerqController>(
        transport.listen(addresses.back()), *policies[d], cfg.controller));
    const std::size_t m = d % cfg.mids;
    where[d] = {m, d / cfg.mids};
    controllers.back()->attach_arbiter(
        transport.connect(mid_addresses[m]),
        static_cast<std::uint32_t>(d / cfg.mids),
        static_cast<std::uint32_t>(kids[m] + 1), leaf_attachment(d, m));
  }
  daemon::DaemonPlant plant(cfg.engine, transport, addresses, cfg.plant);
  for (auto& c : controllers) c->pump();

  TreeChaosReport report;
  const auto& spec = apps::node_power_spec();
  const double budget_w = plant.engine().cluster().power_budget_w();

  // Scope each level divided, captured the instant it decided (service()
  // returns true): for a mid that is the parent grant it held right after
  // its pump_parent, so conservation is checked against exactly the number
  // the allocation used -- no cross-level lag slack required.
  std::vector<double> mid_scope_w(cfg.mids, 0.0);
  std::vector<bool> mid_ever_decided(cfg.mids, false);
  double root_scope_w = 0.0;
  bool root_ever_decided = false;
  std::vector<bool> spare_used(cfg.mids, false);
  /// (first tick to check from, mid, local slot) per executed re-parent.
  std::vector<std::tuple<std::uint64_t, std::size_t, std::size_t>> released;

  const auto probe = [&](hier::ArbiterDaemon& a, double scope) {
    double sum = a.reserved_w();
    for (double g : a.grants_w()) sum += g;
    report.max_level_overdraw_w =
        std::max(report.max_level_overdraw_w, sum - scope);
  };
  const auto service = [&] {
    for (auto& c : controllers) c->service();
    for (std::size_t m = 0; m < cfg.mids; ++m) {
      if (mid_daemons[m]->service()) {
        mid_scope_w[m] =
            mid_daemons[m]->any_parent_grant()
                ? mid_daemons[m]->parent_grant_w()
                : mid_daemons[m]->cluster_budget_w() /
                      static_cast<double>(cfg.mids);
        mid_ever_decided[m] = true;
        probe(*mid_daemons[m], mid_scope_w[m]);
      }
    }
    if (root.service()) {
      root_scope_w = root.cluster_budget_w();
      root_ever_decided = true;
      probe(root, root_scope_w);
    }
  };

  std::uint64_t tick = 0;
  while (!plant.done() && (cfg.max_ticks == 0 || tick < cfg.max_ticks)) {
    plan.set_tick(tick);

    for (const ReparentEvent& ev : cfg.reparents) {
      if (ev.tick != tick) continue;
      PERQ_REQUIRE(ev.domain < cfg.domains && ev.new_mid < cfg.mids,
                   "re-parent names an unknown domain or mid");
      const auto [old_mid, old_local] = where[ev.domain];
      if (old_mid == ev.new_mid) continue;
      PERQ_REQUIRE(!spare_used[ev.new_mid],
                   "target mid's spare slot is already taken");
      try {
        controllers[ev.domain]->reattach_arbiter(
            transport.connect(mid_addresses[ev.new_mid]),
            static_cast<std::uint32_t>(kids[ev.new_mid]),  // the spare slot
            static_cast<std::uint32_t>(kids[ev.new_mid] + 1),
            leaf_attachment(ev.domain, ev.new_mid));
        spare_used[ev.new_mid] = true;
        where[ev.domain] = {ev.new_mid, kids[ev.new_mid]};
        ++report.reparents_executed;
        // The leaving report reaches the old mid on its next pump; by two
        // ticks later the release must have zeroed the slot for good.
        released.emplace_back(tick + 2, old_mid, old_local);
      } catch (const precondition_error&) {
        // Target listener gone; leave the domain where it is.
      }
    }

    for (const AgentEvent& e : cfg.events) {
      if (e.tick != tick || e.agent >= plant.agent_count()) continue;
      if (e.kind == AgentEvent::Kind::kHang) {
        plant.agent(e.agent).hang();
      } else {
        try {
          if (auto conn =
                  transport.connect(addresses[e.agent % cfg.domains])) {
            plant.agent(e.agent).reconnect(std::move(conn));
          }
        } catch (const precondition_error&) {
          // Listener gone; the regular reconnect path keeps retrying.
        }
      }
    }

    const bool planned = plant.step(service);
    if (!planned) ++report.held_ticks;
    plant.reconnect_lost(transport, addresses);

    // --- run-level safety invariants, evaluated every tick ---
    TickRecord rec;
    rec.tick = tick;
    rec.plan_arrived = planned;
    rec.budget_total_w = budget_w;
    for (const sched::Job* job : plant.engine().running()) {
      const double cap = job->last_cap_w();
      const double nodes = static_cast<double>(job->spec().nodes);
      rec.committed_w += cap * nodes;
      rec.caps_by_job.emplace_back(job->spec().id, cap);
      if (cap != 0.0 && (!std::isfinite(cap) || cap < spec.cap_min - 1e-6 ||
                         cap > spec.tdp + 1e-6)) {
        report.violations.push_back(
            tick_msg(tick, "applied cap outside [cap_min, TDP]", cap,
                     spec.tdp));
      }
    }
    if (rec.committed_w > budget_w + 1e-3) {
      report.violations.push_back(
          tick_msg(tick, "committed watts exceed cluster budget",
                   rec.committed_w, budget_w));
    }
    // Conservation per level, against the scope captured at decide time.
    if (root_ever_decided) {
      rec.grants_w = root.grants_w();
      double outstanding_w = root.reserved_w();
      for (const double g : rec.grants_w) outstanding_w += g;
      if (outstanding_w > root_scope_w + 1e-3) {
        report.violations.push_back(
            tick_msg(tick, "root grants exceed cluster budget",
                     outstanding_w, root_scope_w));
      }
    }
    for (std::size_t m = 0; m < cfg.mids; ++m) {
      if (!mid_ever_decided[m]) continue;
      const hier::ArbiterDaemon& mid = *mid_daemons[m];
      const std::vector<double>& grants = mid.grants_w();
      double outstanding_w = mid.reserved_w();
      for (const double g : grants) outstanding_w += g;
      if (outstanding_w > mid_scope_w[m] + 1e-3) {
        report.violations.push_back(
            tick_msg(tick, "mid grants exceed parent scope", outstanding_w,
                     mid_scope_w[m]));
      }
      // Tenant SLA fairness: no live child below its (capacity-clipped)
      // SLA floor while a live sibling holds head-room -- watts above its
      // own effective floor AND above the equal share of the scope this
      // mid divided. When the scope cannot cover the joint floors they
      // scale proportionally (conservation outranks SLA, see DESIGN.md
      // section 5i); a sibling sitting at its scaled floor is not unfair,
      // so the check only fires when head-room flowed past an unmet floor.
      const std::size_t slots = kids[m] + 1;
      const double equal_w = mid_scope_w[m] / static_cast<double>(slots);
      for (std::uint32_t c1 = 0; c1 < slots; ++c1) {
        const hier::DomainDemand d1 =
            mid.demand(static_cast<std::uint32_t>(c1));
        if (d1.busy_nodes <= 0.0 || d1.sla_floor_w <= 0.0) continue;
        if (mid.fenced(c1)) continue;
        const double need_w = std::min(d1.sla_floor_w, d1.capacity_w);
        if (grants[c1] >= need_w - 1e-6) continue;
        for (std::uint32_t c2 = 0; c2 < slots; ++c2) {
          if (c2 == c1 || mid.fenced(c2)) continue;
          const hier::DomainDemand d2 =
              mid.demand(static_cast<std::uint32_t>(c2));
          const double floor2_w = std::max(d2.floor_w, d2.sla_floor_w);
          if (grants[c2] > floor2_w + 1e-3 && grants[c2] > equal_w + 1e-3) {
            report.violations.push_back(tick_msg(
                tick, "tenant below SLA floor while sibling holds head-room",
                grants[c1], grants[c2]));
          }
        }
      }
    }
    // Re-parent hygiene: a released slot stays at zero watts -- the moved
    // subtree must never draw from old and new parents at once.
    for (const auto& [from_tick, m, local] : released) {
      if (tick < from_tick) continue;
      const double g = mid_daemons[m]->grants_w()[local];
      if (g != 0.0) {
        report.violations.push_back(tick_msg(
            tick, "released slot still holds watts after re-parent", g, 0.0));
      }
    }
    // Each domain that decided this tick stayed within its grant.
    for (const auto& c : controllers) {
      const auto& stats = c->last_stats();
      if (stats.tick != tick) continue;
      if (stats.budget_row_w + stats.held_w > stats.granted_w + 1e-3) {
        report.violations.push_back(
            tick_msg(tick, "domain budget row + held watts exceed grant",
                     stats.budget_row_w + stats.held_w, stats.granted_w));
      }
    }
    report.history.push_back(std::move(rec));
    ++tick;
  }

  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  for (auto& c : controllers) c->pump();
  for (auto& m : mid_daemons) m->pump();
  root.pump();

  report.result = plant.finish("PERQ-TREE" + std::to_string(cfg.mids) + "x" +
                               std::to_string(cfg.domains));
  report.controller_counters.reserve(controllers.size());
  for (const auto& c : controllers) {
    report.controller_counters.push_back(c->counters());
  }
  report.aggregated_counters = root.aggregated_counters();
  report.plant_counters = plant.counters();
  report.faults = plan.stats();
  report.ticks = tick;
  report.root_decisions = root.decisions();
  report.root_grants_w = root.grants_w();
  for (const auto& m : mid_daemons) {
    report.mid_decisions.push_back(m->decisions());
    report.mid_grants_w.push_back(m->grants_w());
  }
  return report;
}

FailoverChaosReport run_failover_chaos(const FailoverChaosConfig& cfg,
                                       core::PerqPolicy& primary_policy,
                                       core::PerqPolicy& standby_policy) {
  net::LoopbackTransport loop;
  FaultPlan plan(cfg.fault_seed);
  plan.set_default_schedule(cfg.default_schedule);
  for (const auto& [index, sched] : cfg.schedules) {
    plan.set_schedule(index, sched);
  }
  if (cfg.partition_primary.begin < cfg.partition_primary.end) {
    // Replication link (index 0) plus every initial agent connection: the
    // primary keeps running but nothing reaches it or leaves it.
    for (std::size_t i = 0; i <= cfg.plant.agents; ++i) {
      ConnectionSchedule sched = plan.schedule_for(i);
      sched.partitions.push_back(cfg.partition_primary);
      plan.set_schedule(i, sched);
    }
  }
  FaultyTransport transport(loop, plan);

  const std::string primary_address = "perqd-a";
  const std::string standby_address = "perqd-b";
  daemon::ControllerConfig standby_cfg = cfg.controller;
  standby_cfg.standby = true;
  auto standby = std::make_unique<daemon::PerqController>(
      transport.listen(standby_address), standby_policy, standby_cfg);
  auto primary = std::make_unique<daemon::PerqController>(
      transport.listen(primary_address), primary_policy, cfg.controller);
  // Dialed before any agent: connection index 0 is the replication link.
  primary->attach_standby(transport.connect(standby_address));

  daemon::PlantConfig pcfg = cfg.plant;
  if (pcfg.failover_addresses.empty()) {
    pcfg.failover_addresses = {{primary_address, standby_address}};
  }
  if (pcfg.failover_after_held_ticks == 0) pcfg.failover_after_held_ticks = 2;
  daemon::DaemonPlant plant(cfg.engine, transport, primary_address, pcfg);
  primary->pump();
  standby->service();  // ingest the replicated bootstrap snapshot

  FailoverChaosReport report;
  const auto& spec = apps::node_power_spec();
  const double budget_w = plant.engine().cluster().power_budget_w();
  const double floor_w =
      pcfg.failsafe_floor_w > 0.0
          ? std::clamp(pcfg.failsafe_floor_w, spec.cap_min, spec.tdp)
          : spec.cap_min;
  const auto service = [&] {
    if (primary != nullptr) primary->service();
    standby->service();
  };

  bool promoted = false;
  std::uint64_t silent = 0;
  std::uint64_t last_repl = standby->replicated_decides();

  std::uint64_t tick = 0;
  while (!plant.done() && (cfg.max_ticks == 0 || tick < cfg.max_ticks)) {
    plan.set_tick(tick);

    if (tick == cfg.kill_primary_at_tick && primary != nullptr) {
      standby->service();  // drain replication queued by the last decide
      report.primary_counters = primary->counters();
      primary.reset();  // crash: listener and every session die
      if (cfg.tight_handover && !promoted) {
        standby->promote();
        promoted = true;
        report.promoted_at_tick = tick;
        for (std::size_t i = 0; i < plant.agent_count(); ++i) {
          try {
            if (auto conn = transport.connect(standby_address)) {
              plant.agent(i).reconnect(std::move(conn));
            }
          } catch (const precondition_error&) {
            // Standby gone too; the failover path keeps retrying.
          }
        }
      }
    }

    for (const AgentEvent& e : cfg.events) {
      if (e.tick != tick || e.agent >= plant.agent_count()) continue;
      if (e.kind == AgentEvent::Kind::kHang) {
        plant.agent(e.agent).hang();
      } else {
        // Rejoin dials the group's current failover candidate, like the
        // plant's own reconnect path would.
        const std::string& addr =
            pcfg.failover_addresses[0][plant.failover_cursor(0)];
        try {
          if (auto conn = transport.connect(addr)) {
            plant.agent(e.agent).reconnect(std::move(conn));
          }
        } catch (const precondition_error&) {
          // Listener gone; the regular reconnect path keeps retrying.
        }
      }
    }

    // Deposed-primary fencing script: force an agent back onto the original
    // primary address. If the old primary still lives, its stale-epoch
    // announce must bounce the agent straight off again.
    for (const auto& [t, a] : cfg.redial_primary) {
      if (t != tick || a >= plant.agent_count()) continue;
      try {
        if (auto conn = transport.connect(primary_address)) {
          plant.agent(a).reconnect(std::move(conn));
        }
      } catch (const precondition_error&) {
        // Primary really is dead; nothing to fence.
      }
    }

    const bool planned = plant.step(service);
    if (!planned) ++report.held_ticks;
    plant.reconnect_failover(transport);

    // Takeover detector: the standby promotes itself once the replication
    // stream has been silent while the plant is visibly planless -- both
    // signals together distinguish a dead primary from a quiet one.
    if (!promoted) {
      const std::uint64_t repl = standby->replicated_decides();
      silent = (repl == last_repl && !planned) ? silent + 1 : 0;
      last_repl = repl;
      if (cfg.takeover_after_silent_ticks > 0 &&
          silent >= cfg.takeover_after_silent_ticks) {
        standby->promote();
        promoted = true;
        report.promoted_at_tick = tick;
      }
    }

    // --- run-level safety invariants, evaluated every tick ---
    daemon::PerqController* active = promoted ? standby.get() : primary.get();
    TickRecord rec;
    rec.tick = tick;
    rec.plan_arrived = planned;
    rec.budget_total_w = budget_w;
    std::map<int, double> nodes_by_job;
    for (const sched::Job* job : plant.engine().running()) {
      const double cap = job->last_cap_w();
      const double nodes = static_cast<double>(job->spec().nodes);
      nodes_by_job[job->spec().id] = nodes;
      rec.committed_w += cap * nodes;
      rec.caps_by_job.emplace_back(job->spec().id, cap);
      if (cap != 0.0 && (!std::isfinite(cap) || cap < spec.cap_min - 1e-6 ||
                         cap > spec.tdp + 1e-6)) {
        report.violations.push_back(
            tick_msg(tick, "applied cap outside [cap_min, TDP]", cap,
                     spec.tdp));
      }
    }
    if (rec.committed_w > budget_w + 1e-3) {
      report.violations.push_back(
          tick_msg(tick, "committed watts exceed cluster budget",
                   rec.committed_w, budget_w));
    }
    // Fail-safe decay law: once the group has been planless past the
    // threshold, every held cap must follow cap' <= floor + (cap-floor)*d,
    // drifting toward the safe floor and never rising.
    if (pcfg.failsafe_after_ticks > 0 && !report.history.empty() &&
        plant.group_held_ticks(0) >= pcfg.failsafe_after_ticks) {
      const TickRecord& prev = report.history.back();
      if (prev.tick + 1 == tick) {
        std::map<int, double> prev_caps(prev.caps_by_job.begin(),
                                        prev.caps_by_job.end());
        for (const auto& [id, cap] : rec.caps_by_job) {
          const auto it = prev_caps.find(id);
          if (it == prev_caps.end()) continue;
          const double want =
              floor_w + (it->second - floor_w) * pcfg.failsafe_decay;
          if (cap > std::max(want, floor_w) + 1e-6) {
            report.violations.push_back(tick_msg(
                tick, "held cap failed to decay toward fail-safe floor", cap,
                want));
          }
        }
      }
    }
    if (planned && active != nullptr) {
      const proto::CapPlan& p = active->last_plan();
      double plan_w = 0.0;
      for (const proto::CapEntry& e : p.entries) {
        if (e.cap_w != 0.0 &&
            (!std::isfinite(e.cap_w) || e.cap_w < spec.cap_min - 1e-6 ||
             e.cap_w > spec.tdp + 1e-6)) {
          report.violations.push_back(tick_msg(
              tick, "delivered plan cap outside [cap_min, TDP]", e.cap_w,
              spec.tdp));
        }
        const auto it = nodes_by_job.find(e.job_id);
        if (it != nodes_by_job.end()) plan_w += e.cap_w * it->second;
      }
      if (plan_w > budget_w + 1e-3) {
        report.violations.push_back(tick_msg(
            tick, "delivered plan sums above cluster budget", plan_w,
            budget_w));
      }
      const auto& stats = active->last_stats();
      if (stats.budget_row_w + stats.held_w > budget_w + 1e-3) {
        report.violations.push_back(
            tick_msg(tick, "budget row + held watts exceed budget",
                     stats.budget_row_w + stats.held_w, budget_w));
      }
    }
    report.history.push_back(std::move(rec));
    ++tick;
  }

  for (std::size_t i = 0; i < plant.agent_count(); ++i) plant.agent(i).bye();
  if (primary != nullptr) {
    primary->pump();
    report.primary_counters = primary->counters();
  }
  standby->pump();

  report.result = plant.finish(primary_policy.name());
  report.standby_counters = standby->counters();
  report.plant_counters = plant.counters();
  report.faults = plan.stats();
  report.ticks = tick;
  report.replicated_decides = standby->replicated_decides();
  report.repl_divergence = standby->repl_divergence();
  report.repl_rejected = standby->repl_rejected();
  report.standby_epoch = standby->epoch();
  for (std::size_t i = 0; i < plant.agent_count(); ++i) {
    report.stale_epoch_frames += plant.agent(i).stale_epoch_frames();
  }
  return report;
}

std::uint64_t reconvergence_tick(const std::vector<TickRecord>& faulted,
                                 const std::vector<TickRecord>& baseline,
                                 std::uint64_t from, double tol_w) {
  std::map<std::uint64_t, const TickRecord*> base;
  for (const TickRecord& r : baseline) base[r.tick] = &r;
  if (faulted.empty() || baseline.empty()) return kNever;
  const std::uint64_t end =
      std::min(faulted.back().tick, baseline.back().tick);

  bool any_divergence = false;
  std::uint64_t last_divergence = 0;
  for (const TickRecord& f : faulted) {
    if (f.tick < from || f.tick > end) continue;
    const auto it = base.find(f.tick);
    bool diverged = it == base.end();
    if (!diverged) {
      const TickRecord& b = *it->second;
      std::map<int, double> bcaps(b.caps_by_job.begin(), b.caps_by_job.end());
      if (f.caps_by_job.size() != bcaps.size()) diverged = true;
      for (const auto& [id, cap] : f.caps_by_job) {
        const auto bit = bcaps.find(id);
        if (bit == bcaps.end() || std::abs(cap - bit->second) > tol_w) {
          diverged = true;
          break;
        }
      }
    }
    if (diverged) {
      any_divergence = true;
      last_divergence = std::max(last_divergence, f.tick);
    }
  }
  if (!any_divergence) return from;
  return last_divergence >= end ? kNever : last_divergence + 1;
}

std::uint64_t longest_power_divergence_streak(
    const std::vector<TickRecord>& faulted,
    const std::vector<TickRecord>& baseline, TickWindow range, double tol_w) {
  std::map<std::uint64_t, const TickRecord*> base;
  for (const TickRecord& r : baseline) base[r.tick] = &r;
  std::uint64_t streak = 0, longest = 0;
  std::uint64_t prev_tick = kNever;
  for (const TickRecord& f : faulted) {
    if (!range.contains(f.tick)) continue;
    const auto it = base.find(f.tick);
    const bool diverged =
        it == base.end() ||
        std::abs(f.committed_w - it->second->committed_w) > tol_w;
    if (diverged) {
      streak = (prev_tick != kNever && f.tick == prev_tick + 1) ? streak + 1 : 1;
      longest = std::max(longest, streak);
      prev_tick = f.tick;
    } else {
      streak = 0;
      prev_tick = kNever;
    }
  }
  return longest;
}

}  // namespace perq::fault
