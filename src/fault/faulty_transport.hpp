// Fault-injecting transport decorator.
//
// FaultyTransport wraps any net::Transport (loopback or TCP) and decorates
// the connections it dials with FaultyConnection, which interprets the
// FaultPlan's per-connection schedule: dropping, delaying, duplicating,
// reordering, truncating, and bit-flipping frames, killing the connection
// at a scheduled tick, and blacking out both directions during partition
// windows. listen() passes through untouched -- faults are injected on the
// client side only (the plant's agents), which covers both directions of
// every controller/agent pair.
//
// Corruption is emulated at the frame level so it behaves identically over
// loopback and TCP: the message is encoded with the real wire codec, the
// bytes are mutated, and the frame is re-parsed. A mutation the parser
// survives is delivered as the (now semantically insane) message -- the
// controller's and plant's sanity screens must catch it; a mutation the
// parser rejects is exactly what poisons a stream decoder, so the
// connection dies the way a real corrupt TCP stream would. Bit flips land
// in the post-length region (magic..body): flipping the length prefix
// itself desynchronizes framing, which is the same decoder-poison outcome.
//
// Every random draw comes from the connection's own seeded stream and every
// time reference is the FaultPlan's fault clock (set from the plant tick),
// so a fault sequence is a pure function of (seed, schedules, tick trace).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace perq::fault {

class FaultyConnection final : public net::Connection {
 public:
  /// The plan must outlive the connection. `conn_index` selects the
  /// schedule and the private randomness stream.
  FaultyConnection(std::unique_ptr<net::Connection> inner, FaultPlan* plan,
                   std::size_t conn_index);

  bool send(const proto::Message& m) override;
  std::vector<proto::Message> receive() override;
  bool open() const override;
  /// True when injected corruption (truncate, or a bit flip the parser
  /// rejected) killed this connection's inbound stream, or the inner
  /// connection reports its own corruption.
  bool corrupt() const override;
  void close() override;
  int fd() const override;

 private:
  enum Dir : std::size_t { kTx = 0, kRx = 1 };

  struct Held {
    proto::Message m;
    std::uint64_t tick = 0;  ///< due tick (delay) or origin tick (reorder)
  };

  /// Advances fault time: kills the connection at its kill tick, releases
  /// due delayed frames, and flushes reorder holds left from earlier ticks.
  void pump();
  /// Runs one frame through the schedule; deliverable frames reach the
  /// inner connection (tx) or rx_ready_ (rx).
  void inject(const proto::Message& m, Dir dir);
  void deliver(const proto::Message& m, Dir dir);
  /// deliver(), but swapped behind the reorder hold when one is pending.
  void deliver_reordered(const proto::Message& m, Dir dir);
  /// Encode -> flip one bit -> re-parse; deliver the mutant or die corrupt.
  void flip_and_deliver(const proto::Message& m, Dir dir);
  /// Unrecoverable stream corruption: close, and for rx mark corrupt().
  void die_corrupt(Dir dir);

  std::unique_ptr<net::Connection> inner_;
  FaultPlan* plan_;
  ConnectionSchedule sched_;
  Rng rng_;
  std::vector<Held> delayed_[2];
  std::optional<Held> hold_[2];  ///< reorder hold, one per direction
  std::vector<proto::Message> rx_ready_;
  bool killed_ = false;
  bool corrupt_ = false;
};

class FaultyTransport final : public net::Transport {
 public:
  /// Both references must outlive the transport.
  FaultyTransport(net::Transport& inner, FaultPlan& plan)
      : inner_(inner), plan_(plan) {}

  /// Pass-through: the server side is never decorated.
  std::unique_ptr<net::Listener> listen(const std::string& address) override {
    return inner_.listen(address);
  }

  /// Dials through the inner transport and decorates the result. Connection
  /// indices count successful dials only, so a refused connect does not
  /// shift later connections onto the wrong schedule.
  std::unique_ptr<net::Connection> connect(const std::string& address) override;

  std::size_t connections_made() const { return next_index_; }

 private:
  net::Transport& inner_;
  FaultPlan& plan_;
  std::size_t next_index_ = 0;
};

}  // namespace perq::fault
