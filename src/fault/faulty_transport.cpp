#include "fault/faulty_transport.hpp"

#include <utility>

#include "util/require.hpp"

namespace perq::fault {

FaultyConnection::FaultyConnection(std::unique_ptr<net::Connection> inner,
                                   FaultPlan* plan, std::size_t conn_index)
    : inner_(std::move(inner)),
      plan_(plan),
      sched_(plan->schedule_for(conn_index)),
      rng_(plan->rng_for(conn_index)) {
  PERQ_REQUIRE(inner_ != nullptr, "faulty connection needs an inner connection");
}

void FaultyConnection::pump() {
  const std::uint64_t t = plan_->tick();
  if (!killed_ && t >= sched_.kill_at_tick) {
    killed_ = true;
    ++plan_->stats().killed;
    inner_->close();
  }
  for (const Dir dir : {kTx, kRx}) {
    auto& queue = delayed_[dir];
    for (std::size_t i = 0; i < queue.size();) {
      if (queue[i].tick <= t) {
        deliver(queue[i].m, dir);
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // A reorder hold waits for the next frame of its direction; if none
    // came by the next tick, release it so no frame is held forever.
    if (hold_[dir].has_value() && hold_[dir]->tick < t) {
      const proto::Message m = std::move(hold_[dir]->m);
      hold_[dir].reset();
      deliver(m, dir);
    }
  }
}

void FaultyConnection::deliver(const proto::Message& m, Dir dir) {
  if (dir == kTx) {
    if (inner_->open()) inner_->send(m);
  } else {
    rx_ready_.push_back(m);
  }
}

void FaultyConnection::deliver_reordered(const proto::Message& m, Dir dir) {
  if (hold_[dir].has_value()) {
    const proto::Message held = std::move(hold_[dir]->m);
    hold_[dir].reset();
    deliver(m, dir);    // the newer frame jumps the queue...
    deliver(held, dir); // ...and the held one follows: a pairwise swap
  } else {
    deliver(m, dir);
  }
}

void FaultyConnection::die_corrupt(Dir dir) {
  // A frame that cannot be re-framed poisons the receiving stream decoder,
  // which closes the connection. On rx the poisoned decoder is ours, so
  // this connection reports corrupt(); on tx it is the peer's, which sees
  // its own decoder poison (TCP) or an EOF (loopback emulation).
  if (dir == kRx) corrupt_ = true;
  inner_->close();
}

void FaultyConnection::flip_and_deliver(const proto::Message& m, Dir dir) {
  std::vector<std::uint8_t> bytes = proto::encode(m);
  PERQ_ASSERT(bytes.size() > 4, "encoded frame smaller than its header");
  const std::size_t bits = (bytes.size() - 4) * 8;
  const std::size_t bit = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(bits) - 1));
  bytes[4 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  const auto parsed = proto::parse_frame(bytes.data() + 4, bytes.size() - 4);
  if (parsed.has_value()) {
    deliver_reordered(*parsed, dir);  // survived framing: a semantic mutant
  } else {
    die_corrupt(dir);
  }
}

void FaultyConnection::inject(const proto::Message& m, Dir dir) {
  const std::uint64_t t = plan_->tick();
  if (sched_.partitioned(t)) {
    ++plan_->stats().partitioned;
    return;
  }
  const FaultRates& r = dir == kTx ? sched_.tx : sched_.rx;
  if (r.any() && sched_.window.contains(t)) {
    FaultStats& stats = plan_->stats();
    if (rng_.bernoulli(r.drop)) {
      ++stats.dropped;
      return;
    }
    if (rng_.bernoulli(r.truncate)) {
      ++stats.truncated;
      die_corrupt(dir);
      return;
    }
    if (rng_.bernoulli(r.bit_flip)) {
      ++stats.bit_flipped;
      flip_and_deliver(m, dir);
      return;
    }
    if (rng_.bernoulli(r.duplicate)) {
      ++stats.duplicated;
      deliver_reordered(m, dir);
      deliver_reordered(m, dir);
      return;
    }
    if (rng_.bernoulli(r.delay)) {
      ++stats.delayed;
      delayed_[dir].push_back({m, t + r.delay_ticks});
      return;
    }
    if (!hold_[dir].has_value() && rng_.bernoulli(r.reorder)) {
      ++stats.reordered;
      hold_[dir] = Held{m, t};
      return;
    }
  }
  deliver_reordered(m, dir);
}

bool FaultyConnection::send(const proto::Message& m) {
  pump();
  if (!inner_->open()) return false;
  ++plan_->stats().tx_frames;
  inject(m, kTx);
  return true;
}

std::vector<proto::Message> FaultyConnection::receive() {
  pump();
  if (inner_->open()) {
    for (proto::Message& m : inner_->receive()) {
      ++plan_->stats().rx_frames;
      inject(m, kRx);
      if (!inner_->open()) break;  // injected corruption killed the stream
    }
  }
  std::vector<proto::Message> out;
  out.swap(rx_ready_);
  return out;
}

bool FaultyConnection::open() const { return inner_->open(); }

bool FaultyConnection::corrupt() const {
  return corrupt_ || inner_->corrupt();
}

void FaultyConnection::close() {
  delayed_[kTx].clear();
  delayed_[kRx].clear();
  hold_[kTx].reset();
  hold_[kRx].reset();
  inner_->close();
}

int FaultyConnection::fd() const { return inner_->fd(); }

std::unique_ptr<net::Connection> FaultyTransport::connect(
    const std::string& address) {
  auto inner = inner_.connect(address);  // loopback throws when no listener
  if (inner == nullptr) return nullptr;  // TCP refused/timed out
  const std::size_t index = next_index_++;
  return std::make_unique<FaultyConnection>(std::move(inner), &plan_, index);
}

}  // namespace perq::fault
