// Deterministic fault plans for the perqd chaos harness.
//
// A FaultPlan is the single source of randomness and scheduling for every
// injected network fault in a run: one master seed, one shared fault clock
// (set from the plant's control tick), and one ConnectionSchedule per
// decorated connection. Two runs with the same seed, schedules, and tick
// sequence inject byte-for-byte identical faults -- which is what lets the
// chaos tests assert exact counter values and compare faulted trajectories
// against baselines.
//
// The schedule language covers the failure modes the perqd loop must
// survive (ISSUE: drop, delay, duplicate, reorder, truncate, bit-flip,
// crash at tick T, partition windows); FaultyConnection (faulty_transport)
// interprets it.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace perq::fault {

inline constexpr std::uint64_t kNever =
    std::numeric_limits<std::uint64_t>::max();

/// Per-direction fault probabilities, each an independent Bernoulli draw
/// per frame, applied in the fixed order drop -> truncate -> bit_flip ->
/// duplicate -> delay -> reorder (a frame suffers at most the first fault
/// drawn). All in [0, 1].
struct FaultRates {
  double drop = 0.0;       ///< frame silently vanishes
  double truncate = 0.0;   ///< frame cut short: unrecoverable stream corruption
  double bit_flip = 0.0;   ///< one random bit flipped in the encoded frame
  double duplicate = 0.0;  ///< frame delivered twice
  double delay = 0.0;      ///< frame held for `delay_ticks` fault-clock ticks
  double reorder = 0.0;    ///< frame held and swapped with the next one
  std::size_t delay_ticks = 1;

  bool any() const {
    return drop > 0.0 || truncate > 0.0 || bit_flip > 0.0 ||
           duplicate > 0.0 || delay > 0.0 || reorder > 0.0;
  }
};

/// Half-open tick interval [begin, end) on the fault clock.
struct TickWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = kNever;
  bool contains(std::uint64_t t) const { return t >= begin && t < end; }
};

/// Everything that can go wrong on one decorated connection.
struct ConnectionSchedule {
  FaultRates tx;  ///< faults on frames the decorated side sends (uplink)
  FaultRates rx;  ///< faults on frames delivered to the decorated side
  /// Rates apply only inside this window; outside it the connection is a
  /// transparent pass-through (the re-convergence tests depend on that).
  TickWindow window;
  /// Tick at which the connection is killed outright (socket closed, the
  /// crash-then-rejoin scenario). kNever disables.
  std::uint64_t kill_at_tick = kNever;
  /// Windows during which the connection is partitioned: every frame in
  /// both directions vanishes, but the connection stays open -- the
  /// heartbeat-timeout staleness path, not the EOF path.
  std::vector<TickWindow> partitions;

  bool partitioned(std::uint64_t t) const {
    for (const TickWindow& w : partitions) {
      if (w.contains(t)) return true;
    }
    return false;
  }
};

/// Run-level tally of every fault actually injected (as opposed to merely
/// scheduled). The chaos tests assert these are non-zero for each exercised
/// fault type, and exact across reruns of the same seed.
struct FaultStats {
  std::uint64_t tx_frames = 0;  ///< frames offered on the uplink
  std::uint64_t rx_frames = 0;  ///< frames offered on the downlink
  std::uint64_t dropped = 0;
  std::uint64_t truncated = 0;
  std::uint64_t bit_flipped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t partitioned = 0;  ///< frames swallowed by a partition window
  std::uint64_t killed = 0;       ///< connections killed at their kill tick
};

std::string to_string(const FaultStats& s);

/// Seeded schedule book + shared fault clock for one run.
///
/// Connections are keyed by the order FaultyTransport::connect() created
/// them (index 0, 1, ...): deterministic, because the plant dials its
/// agents in a fixed order. Each connection draws from its own splitmix-
/// derived child stream, so adding faults to connection 3 never perturbs
/// the draws connection 1 sees.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// Schedule for connections without an explicit entry (default: none --
  /// a FaultPlan with no schedules is a transparent pass-through).
  void set_default_schedule(const ConnectionSchedule& s) { default_ = s; }
  /// Schedule for the index-th connected connection.
  void set_schedule(std::size_t conn_index, const ConnectionSchedule& s) {
    per_conn_[conn_index] = s;
  }
  const ConnectionSchedule& schedule_for(std::size_t conn_index) const {
    const auto it = per_conn_.find(conn_index);
    return it == per_conn_.end() ? default_ : it->second;
  }

  /// Independent per-connection randomness derived from the master seed.
  Rng rng_for(std::size_t conn_index) const {
    return Rng(seed_ ^ (0x9e3779b97f4a7c15ull *
                        (static_cast<std::uint64_t>(conn_index) + 1)));
  }

  /// The fault clock. The harness sets it to the plant's control tick at
  /// the top of every interval; decorated connections read it to evaluate
  /// windows, kill ticks, and delay due times.
  void set_tick(std::uint64_t t) { tick_ = t; }
  std::uint64_t tick() const { return tick_; }

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  std::uint64_t seed_;
  std::uint64_t tick_ = 0;
  ConnectionSchedule default_;
  std::map<std::size_t, ConnectionSchedule> per_conn_;
  FaultStats stats_;
};

}  // namespace perq::fault
