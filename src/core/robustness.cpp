#include "core/robustness.hpp"

#include <cstdio>

namespace perq::core {

std::string to_string(const RobustnessCounters& c) {
  char buf[448];
  std::snprintf(buf, sizeof(buf),
                "dropped %llu  corrupt %llu  reconnects %llu  stale %llu  "
                "solver-fallbacks %llu  clamps %llu  failsafe %llu  "
                "stale-epoch %llu  grants-fenced %llu  reparents %llu  "
                "sla-floors %llu",
                static_cast<unsigned long long>(c.frames_dropped),
                static_cast<unsigned long long>(c.frames_corrupt),
                static_cast<unsigned long long>(c.reconnect_attempts),
                static_cast<unsigned long long>(c.stale_transitions),
                static_cast<unsigned long long>(c.solver_fallbacks),
                static_cast<unsigned long long>(c.clamp_activations),
                static_cast<unsigned long long>(c.failsafe_activations),
                static_cast<unsigned long long>(c.stale_epoch_frames),
                static_cast<unsigned long long>(c.grants_fenced),
                static_cast<unsigned long long>(c.reparent_events),
                static_cast<unsigned long long>(c.sla_floor_activations));
  return buf;
}

}  // namespace perq::core
