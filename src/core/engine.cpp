#include "core/engine.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "apps/catalog.hpp"
#include "sched/scheduler.hpp"
#include "sim/cluster.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace perq::core {

namespace {

sim::ClusterConfig cluster_config(const EngineConfig& cfg) {
  sim::ClusterConfig ccfg;
  ccfg.worst_case_nodes = cfg.worst_case_nodes;
  ccfg.over_provision_factor = cfg.over_provision_factor;
  ccfg.seed = cfg.cluster_seed;
  ccfg.node = cfg.node;
  return ccfg;
}

}  // namespace

std::size_t recommended_job_count(const EngineConfig& cfg) {
  // Conservative sizing: node-seconds available / expected node-seconds per
  // job, times a 3x backlog margin (jobs slowed by capping take longer).
  const trace::TraceConfig probe{cfg.trace.system, 400, cfg.trace.max_job_nodes,
                                 cfg.trace.seed};
  const auto sample = trace::generate_trace(probe);
  const auto stats = trace::compute_stats(sample);
  const double total_nodes =
      cfg.over_provision_factor * static_cast<double>(cfg.worst_case_nodes);
  const double node_seconds = total_nodes * cfg.duration_s;
  const double per_job = std::max(1.0, stats.mean_nodes * stats.mean_runtime_s);
  return static_cast<std::size_t>(3.0 * node_seconds / per_job) + 64;
}

SimulationEngine::SimulationEngine(const EngineConfig& cfg)
    : cfg_(cfg),
      cluster_(cluster_config(cfg)),
      scheduler_(cfg.backfill_window, cfg.backfill_mode,
                 cfg.backfill_max_head_bypass) {
  PERQ_REQUIRE(cfg_.duration_s > 0.0, "duration must be positive");
  PERQ_REQUIRE(cfg_.control_interval_s > 0.0, "control interval must be positive");

  const auto specs = trace::generate_trace(cfg_.trace);
  const auto& catalog = apps::ecp_catalog();
  jobs_.reserve(specs.size());
  for (const auto& spec : specs) {
    PERQ_REQUIRE(spec.app_index < catalog.size(), "app index out of range");
    PERQ_REQUIRE(spec.nodes <= cluster_.size(),
                 "trace contains a job larger than the cluster");
    jobs_.emplace_back(spec, &catalog[spec.app_index]);
  }
  // Jobs enter the scheduler when their submit time is reached (begin_tick);
  // a stable sort by (submit_time, id) keeps submit-order ties in trace
  // order, so all-zero submit times reproduce the old enqueue-all order.
  arrival_order_.resize(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) arrival_order_[i] = i;
  std::stable_sort(arrival_order_.begin(), arrival_order_.end(),
                   [this](std::size_t a, std::size_t b) {
                     return jobs_[a].spec().submit_time_s <
                            jobs_[b].spec().submit_time_s;
                   });

  running_.reserve(jobs_.size());
  last_power_.reserve(jobs_.size());
  result_.over_provision_factor = cfg_.over_provision_factor;
  result_.duration_s = cfg_.duration_s;
  // Sorted copy so the per-job trace membership test is a binary search
  // instead of a linear scan over cfg.traced_jobs every interval.
  traced_sorted_.assign(cfg_.traced_jobs.begin(), cfg_.traced_jobs.end());
  std::sort(traced_sorted_.begin(), traced_sorted_.end());
}

const TickView& SimulationEngine::begin_tick() {
  PERQ_REQUIRE(!done(), "begin_tick past the horizon");
  PERQ_REQUIRE(phase_ == Phase::kIdle, "begin_tick out of phase");

  // Arrival plumbing: hand every job whose submit time has been reached to
  // the scheduler before this tick's placement pass.
  while (next_arrival_ < arrival_order_.size() &&
         jobs_[arrival_order_[next_arrival_]].spec().submit_time_s <= now_s_) {
    scheduler_.enqueue(&jobs_[arrival_order_[next_arrival_]]);
    ++next_arrival_;
  }

  view_.started.clear();
  for (sched::Job* started : scheduler_.schedule(cluster_, now_s_, &running_)) {
    running_.push_back(started);
    last_power_.push_back(0.0);
    view_.started.push_back(started);
  }

  view_.tick = tick_;
  view_.now_s = now_s_;
  view_.dt_s = cfg_.control_interval_s;
  view_.budget_total_w = cluster_.power_budget_w();
  view_.budget_for_busy_w = cluster_.budget_for_busy_nodes_w();
  view_.total_nodes = static_cast<double>(cluster_.size());
  view_.running.assign(running_.begin(), running_.end());
  view_.job_power_w = last_power_;
  view_.finished = finished_last_;

  phase_ = Phase::kAwaitCaps;
  return view_;
}

policy::PolicyContext SimulationEngine::context() const {
  PERQ_REQUIRE(phase_ != Phase::kIdle, "context outside a tick");
  policy::PolicyContext ctx;
  ctx.running = &running_;
  ctx.budget_total_w = cluster_.power_budget_w();
  ctx.budget_for_busy_w = cluster_.budget_for_busy_nodes_w();
  ctx.total_nodes = static_cast<double>(cluster_.size());
  ctx.dt_s = cfg_.control_interval_s;
  ctx.now_s = now_s_;
  return ctx;
}

void SimulationEngine::apply_caps(std::vector<double> caps_w,
                                  std::vector<double> target_ips, bool actuate) {
  PERQ_REQUIRE(phase_ == Phase::kAwaitCaps, "apply_caps out of phase");
  if (!running_.empty() && !caps_w.empty()) {
    PERQ_ASSERT(caps_w.size() == running_.size(),
                "policy returned wrong cap count");
    PERQ_REQUIRE(target_ips.empty() || target_ips.size() == running_.size(),
                 "target vector arity mismatch");

    // Budget invariant: committed caps must fit the busy-node budget.
    double committed = 0.0;
    for (std::size_t i = 0; i < running_.size(); ++i) {
      committed += caps_w[i] * static_cast<double>(running_[i]->spec().nodes);
    }
    PERQ_ASSERT(committed <= cluster_.budget_for_busy_nodes_w() + 1e-3,
                "policy exceeded the system power budget");
    // Hier mode: the cluster row is necessary but not sufficient -- each
    // domain must also stay inside its own grant, and the grants themselves
    // must conserve the cluster budget.
    if (!domain_grants_w_.empty()) {
      PERQ_ASSERT(domain_of_job_.size() == running_.size(),
                  "domain map arity mismatch");
      double grant_sum = 0.0;
      for (double g : domain_grants_w_) grant_sum += g;
      PERQ_ASSERT(grant_sum <= cluster_.budget_for_busy_nodes_w() + 1e-3,
                  "domain grants exceed the cluster budget");
      std::vector<double> committed_d(domain_grants_w_.size(), 0.0);
      for (std::size_t i = 0; i < running_.size(); ++i) {
        PERQ_ASSERT(domain_of_job_[i] < domain_grants_w_.size(),
                    "job mapped to unknown domain");
        committed_d[domain_of_job_[i]] +=
            caps_w[i] * static_cast<double>(running_[i]->spec().nodes);
      }
      for (std::size_t d = 0; d < committed_d.size(); ++d) {
        PERQ_ASSERT(committed_d[d] <= domain_grants_w_[d] + 1e-3,
                    "domain committed beyond its grant");
      }
    }
    if (actuate) {
      for (std::size_t i = 0; i < running_.size(); ++i) {
        for (std::size_t id : running_[i]->node_ids()) {
          cluster_.node(id).set_cap(caps_w[i]);
        }
      }
    }
  }
  pending_caps_ = std::move(caps_w);
  pending_targets_ = std::move(target_ips);
  result_.peak_committed_w =
      std::max(result_.peak_committed_w, cluster_.committed_power_w());
  phase_ = Phase::kAwaitAdvance;
}

void SimulationEngine::note_decision_time(double seconds) {
  result_.decision_seconds.push_back(seconds);
}

void SimulationEngine::set_domain_grants(std::vector<double> grants_w,
                                         std::vector<std::uint32_t> domain_of_job) {
  PERQ_REQUIRE(phase_ == Phase::kAwaitCaps,
               "domain grants must be registered before apply_caps");
  domain_grants_w_ = std::move(grants_w);
  domain_of_job_ = std::move(domain_of_job);
}

void SimulationEngine::advance() {
  PERQ_REQUIRE(phase_ == Phase::kAwaitAdvance, "advance out of phase");
  domain_grants_w_.clear();
  domain_of_job_.clear();
  const double dt = cfg_.control_interval_s;

  double draw_w = cluster_.step_idle_nodes(dt);

  // Phase A, parallel: step each running job's node physics. Jobs own
  // disjoint node sets and every node carries its own noise stream, so
  // job i's task touches only its nodes and advance_scratch_[i] -- the
  // decomposition is index-addressed and bit-deterministic regardless of
  // scheduling (and collapses to the plain loop on one worker). The
  // in-node accumulation order (node_ids() order) matches the old loop.
  advance_scratch_.resize(running_.size());
  ThreadPool::shared().parallel_for(
      0, running_.size(),
      [this, dt](std::size_t i) {
        sched::Job& job = *running_[i];
        const std::size_t phase = job.current_phase();
        double job_draw_w = 0.0;
        double min_ips = std::numeric_limits<double>::infinity();
        double min_perf = std::numeric_limits<double>::infinity();
        for (std::size_t id : job.node_ids()) {
          sim::Node& node = cluster_.node(id);
          const auto sample = node.step_busy(dt, job.app(), phase);
          job_draw_w += sample.power_w;
          min_ips = std::min(min_ips, sample.ips);
          min_perf = std::min(min_perf, node.perf_fraction(job.app(), phase));
        }
        advance_scratch_[i] = {job_draw_w, min_ips, min_perf};
      },
      /*grain=*/4);

  // Phase B, serial in job order: commit the results. Power sums
  // accumulate in the same order as the old loop (floating-point addition
  // is order-sensitive), traces append in job order, and job state updates
  // stay single-threaded.
  for (std::size_t i = 0; i < running_.size(); ++i) {
    sched::Job& job = *running_[i];
    const JobAdvance& adv = advance_scratch_[i];
    draw_w += adv.draw_w;
    last_power_[i] = adv.draw_w;
    const double job_ips = adv.min_ips * static_cast<double>(job.spec().nodes);
    const double cap_w = pending_caps_.empty() ? 0.0 : pending_caps_[i];
    job.record_interval(dt, adv.min_perf, job_ips, cap_w);

    if (!traced_sorted_.empty() &&
        std::binary_search(traced_sorted_.begin(), traced_sorted_.end(),
                           job.spec().id)) {
      const double target =
          pending_targets_.empty() ? 0.0 : pending_targets_[i];
      result_.traces.push_back(
          {now_s_, job.spec().id, cap_w, job_ips, target, adv.min_perf});
    }
  }
  energy_j_ += draw_w * dt;

  finished_last_.clear();
  for (std::size_t i = 0; i < running_.size();) {
    sched::Job& job = *running_[i];
    if (job.work_complete()) {
      const auto nodes = job.node_ids();
      job.finish(now_s_ + dt);
      cluster_.release(nodes);
      result_.finished.push_back({job.spec().id, job.spec().nodes,
                                  job.spec().app_index, job.spec().runtime_ref_s,
                                  job.start_time_s(), job.finish_time_s(),
                                  job.runtime_s()});
      finished_last_.emplace_back(&job, nodes.front());
      running_[i] = running_.back();
      running_.pop_back();
      last_power_[i] = last_power_.back();
      last_power_.pop_back();
    } else {
      ++i;
    }
  }

  now_s_ += dt;
  ++tick_;
  phase_ = Phase::kIdle;
}

RunResult SimulationEngine::finish(std::string policy_name) {
  PERQ_REQUIRE(phase_ == Phase::kIdle, "finish mid-tick");
  result_.policy_name = std::move(policy_name);
  result_.jobs_completed = result_.finished.size();
  result_.mean_power_draw_w = energy_j_ / cfg_.duration_s;
  return std::move(result_);
}

RunResult run_experiment(const EngineConfig& cfg, policy::PowerPolicy& policy) {
  SimulationEngine engine(cfg);
  std::vector<double> caps;
  std::vector<double> targets;
  while (!engine.done()) {
    const TickView& view = engine.begin_tick();
    for (const sched::Job* started : view.started) policy.on_job_started(*started);

    caps.clear();
    targets.clear();
    if (!view.running.empty()) {
      const policy::PolicyContext ctx = engine.context();
      Stopwatch timer;
      caps = policy.allocate(ctx);
      engine.note_decision_time(timer.seconds());
      targets.reserve(view.running.size());
      for (const sched::Job* job : view.running) {
        targets.push_back(policy.target_ips(job->spec().id));
      }
    }
    engine.apply_caps(std::move(caps), std::move(targets));
    engine.advance();
    for (const auto& finished : engine.last_finished()) {
      policy.on_job_finished(*finished.first);
    }
  }
  return engine.finish(policy.name());
}

}  // namespace perq::core
