#include "core/engine.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "apps/catalog.hpp"
#include "sched/scheduler.hpp"
#include "sim/cluster.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace perq::core {

std::size_t recommended_job_count(const EngineConfig& cfg) {
  // Conservative sizing: node-seconds available / expected node-seconds per
  // job, times a 3x backlog margin (jobs slowed by capping take longer).
  const trace::TraceConfig probe{cfg.trace.system, 400, cfg.trace.max_job_nodes,
                                 cfg.trace.seed};
  const auto sample = trace::generate_trace(probe);
  const auto stats = trace::compute_stats(sample);
  const double total_nodes =
      cfg.over_provision_factor * static_cast<double>(cfg.worst_case_nodes);
  const double node_seconds = total_nodes * cfg.duration_s;
  const double per_job = std::max(1.0, stats.mean_nodes * stats.mean_runtime_s);
  return static_cast<std::size_t>(3.0 * node_seconds / per_job) + 64;
}

RunResult run_experiment(const EngineConfig& cfg, policy::PowerPolicy& policy) {
  PERQ_REQUIRE(cfg.duration_s > 0.0, "duration must be positive");
  PERQ_REQUIRE(cfg.control_interval_s > 0.0, "control interval must be positive");

  sim::ClusterConfig ccfg;
  ccfg.worst_case_nodes = cfg.worst_case_nodes;
  ccfg.over_provision_factor = cfg.over_provision_factor;
  ccfg.seed = cfg.cluster_seed;
  ccfg.node = cfg.node;
  sim::Cluster cluster(ccfg);

  const auto specs = trace::generate_trace(cfg.trace);
  const auto& catalog = apps::ecp_catalog();
  std::vector<sched::Job> jobs;
  jobs.reserve(specs.size());
  for (const auto& spec : specs) {
    PERQ_REQUIRE(spec.app_index < catalog.size(), "app index out of range");
    PERQ_REQUIRE(spec.nodes <= cluster.size(),
                 "trace contains a job larger than the cluster");
    jobs.emplace_back(spec, &catalog[spec.app_index]);
  }

  sched::Scheduler scheduler(cfg.backfill_window, cfg.backfill_mode);
  for (auto& job : jobs) scheduler.enqueue(&job);

  RunResult result;
  result.policy_name = policy.name();
  result.over_provision_factor = cfg.over_provision_factor;
  result.duration_s = cfg.duration_s;

  std::vector<sched::Job*> running;
  running.reserve(jobs.size());
  // Sorted copy so the per-job trace membership test below is a binary
  // search instead of a linear scan over cfg.traced_jobs every interval.
  std::vector<int> traced_sorted(cfg.traced_jobs.begin(), cfg.traced_jobs.end());
  std::sort(traced_sorted.begin(), traced_sorted.end());
  const double dt = cfg.control_interval_s;
  double energy_j = 0.0;
  std::vector<double> caps;

  for (double t = 0.0; t < cfg.duration_s; t += dt) {
    // 1. Start whatever fits (FCFS + backfill).
    for (sched::Job* started : scheduler.schedule(cluster, t, &running)) {
      running.push_back(started);
      policy.on_job_started(*started);
    }

    // 2. Policy decision (timed -- Fig. 13 measures exactly this latency).
    caps.clear();
    if (!running.empty()) {
      policy::PolicyContext ctx;
      ctx.running = &running;
      ctx.budget_total_w = cluster.power_budget_w();
      ctx.budget_for_busy_w = cluster.budget_for_busy_nodes_w();
      ctx.total_nodes = static_cast<double>(cluster.size());
      ctx.dt_s = dt;
      ctx.now_s = t;
      Stopwatch timer;
      caps = policy.allocate(ctx);
      result.decision_seconds.push_back(timer.seconds());
      PERQ_ASSERT(caps.size() == running.size(), "policy returned wrong cap count");

      // Budget invariant: committed caps must fit the busy-node budget.
      double committed = 0.0;
      for (std::size_t i = 0; i < running.size(); ++i) {
        committed += caps[i] * static_cast<double>(running[i]->spec().nodes);
      }
      PERQ_ASSERT(committed <= ctx.budget_for_busy_w + 1e-3,
                  "policy exceeded the system power budget");
      for (std::size_t i = 0; i < running.size(); ++i) {
        for (std::size_t id : running[i]->node_ids()) {
          cluster.node(id).set_cap(caps[i]);
        }
      }
    }
    result.peak_committed_w = std::max(result.peak_committed_w,
                                       cluster.committed_power_w());

    // 3. Advance the physical system one interval.
    double draw_w = cluster.step_idle_nodes(dt);
    for (std::size_t i = 0; i < running.size(); ++i) {
      sched::Job& job = *running[i];
      const std::size_t phase = job.current_phase();
      double min_ips = std::numeric_limits<double>::infinity();
      double min_perf = std::numeric_limits<double>::infinity();
      for (std::size_t id : job.node_ids()) {
        sim::Node& node = cluster.node(id);
        const auto sample = node.step_busy(dt, job.app(), phase);
        draw_w += sample.power_w;
        min_ips = std::min(min_ips, sample.ips);
        min_perf = std::min(min_perf, node.perf_fraction(job.app(), phase));
      }
      const double job_ips = min_ips * static_cast<double>(job.spec().nodes);
      job.record_interval(dt, min_perf, job_ips, caps.empty() ? 0.0 : caps[i]);

      if (!traced_sorted.empty() &&
          std::binary_search(traced_sorted.begin(), traced_sorted.end(),
                             job.spec().id)) {
        result.traces.push_back({t, job.spec().id, caps.empty() ? 0.0 : caps[i],
                                 job_ips, policy.target_ips(job.spec().id),
                                 min_perf});
      }
    }
    energy_j += draw_w * dt;

    // 4. Retire completed jobs.
    for (std::size_t i = 0; i < running.size();) {
      sched::Job& job = *running[i];
      if (job.work_complete()) {
        const auto nodes = job.node_ids();
        job.finish(t + dt);
        cluster.release(nodes);
        policy.on_job_finished(job);
        result.finished.push_back({job.spec().id, job.spec().nodes,
                                   job.spec().app_index, job.spec().runtime_ref_s,
                                   job.start_time_s(), job.finish_time_s(),
                                   job.runtime_s()});
        running[i] = running.back();
        running.pop_back();
      } else {
        ++i;
      }
    }
  }

  result.jobs_completed = result.finished.size();
  result.mean_power_draw_w = energy_j / cfg.duration_s;
  return result;
}

}  // namespace perq::core
