// Builds the canonical per-node-type state-space model.
//
// Paper Sec. 2.4.2: one model per node type, identified offline by running
// the NPB training suite under uniformly random power-cap switching. Our
// training plant is a simulated node (perq::sim) cycling through the
// synthetic NPB-like training catalog -- a suite disjoint from the ten ECP
// evaluation applications, preserving the paper's train/test split.
#pragma once

#include <cstdint>

#include "sysid/identify.hpp"

namespace perq::core {

/// Runs the full training campaign: every training app is excited with a
/// random cap-switching schedule on its own simulated node. One excitation
/// segment per application.
std::vector<sysid::ExcitationData> collect_training_segments(
    std::uint64_t seed, std::size_t samples_per_app = 600, double interval_s = 10.0);

/// The same campaign concatenated into a single record (convenience for
/// data-inspection benches; identification uses the segmented form).
sysid::ExcitationData collect_training_data(std::uint64_t seed,
                                            std::size_t samples_per_app = 600,
                                            double interval_s = 10.0);

/// Identifies a fresh 3rd-order node model from a training campaign.
sysid::IdentifiedModel identify_node_model(std::uint64_t seed);

/// The process-wide cached node model (built once, used throughout --
/// "build-one-time-use-through-out-lifetime" per the paper).
const sysid::IdentifiedModel& canonical_node_model();

}  // namespace perq::core
