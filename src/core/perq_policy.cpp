#include "core/perq_policy.hpp"

#include <algorithm>

#include "apps/app_model.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace perq::core {

PerqPolicy::PerqPolicy(const sysid::IdentifiedModel* node_model,
                       std::size_t worst_case_nodes, std::size_t total_nodes,
                       const PerqConfig& cfg)
    : model_(node_model),
      cfg_(cfg),
      targets_(cfg.improvement_ratio, worst_case_nodes, total_nodes),
      mpc_(cfg.mpc) {
  PERQ_REQUIRE(model_ != nullptr, "PERQ needs the identified node model");
}

void PerqPolicy::on_job_started(const sched::Job& job) {
  // The job's nodes were idling at the minimum cap before it started.
  estimators_.emplace(job.spec().id,
                      control::JobEstimator(model_, apps::node_power_spec().cap_min,
                                            cfg_.estimator));
}

void PerqPolicy::on_job_finished(const sched::Job& job) {
  estimators_.erase(job.spec().id);
  last_targets_.erase(job.spec().id);
}

double PerqPolicy::target_ips(int job_id) const {
  const auto it = last_targets_.find(job_id);
  return it == last_targets_.end() ? 0.0 : it->second;
}

const control::JobEstimator* PerqPolicy::estimator(int job_id) const {
  const auto it = estimators_.find(job_id);
  return it == estimators_.end() ? nullptr : &it->second;
}

PerqPolicyState PerqPolicy::snapshot() const {
  PerqPolicyState s;
  s.tick = tick_;
  s.estimators.reserve(estimators_.size());
  for (const auto& [id, est] : estimators_) s.estimators.emplace_back(id, est.save());
  s.last_targets.assign(last_targets_.begin(), last_targets_.end());
  s.mpc = mpc_.warm_state();
  s.solver_fallbacks = counters_.solver_fallbacks;
  return s;
}

void PerqPolicy::restore(const PerqPolicyState& s) {
  tick_ = static_cast<std::size_t>(s.tick);
  estimators_.clear();
  const double cap_min = apps::node_power_spec().cap_min;
  for (const auto& [id, est_state] : s.estimators) {
    auto [it, inserted] = estimators_.emplace(
        id, control::JobEstimator(model_, cap_min, cfg_.estimator));
    PERQ_ASSERT(inserted, "duplicate estimator id in snapshot");
    it->second.restore(est_state);
  }
  last_targets_.clear();
  last_targets_.insert(s.last_targets.begin(), s.last_targets.end());
  mpc_.restore_warm_state(s.mpc);
  counters_.solver_fallbacks = s.solver_fallbacks;
}

std::vector<double> PerqPolicy::allocate(const policy::PolicyContext& ctx) {
  PERQ_REQUIRE(ctx.running != nullptr, "policy context missing running jobs");
  const auto& running = *ctx.running;
  if (running.empty()) return {};

  Stopwatch timer;

  // Domain-local fairness baseline: a positive ctx.fair_cap_w re-bases the
  // equal-share floor on the scope's granted watts (hier mode); zero keeps
  // the static cluster-wide P_OP, bit-for-bit.
  const auto& pspec = apps::node_power_spec();
  const double fair_anchor_w =
      ctx.fair_cap_w > 0.0
          ? std::clamp(ctx.fair_cap_w, pspec.cap_min, pspec.tdp)
          : targets_.fair_cap_w();

  // 1. Feedback: fold last interval's measurement into each job's estimator.
  std::vector<control::ControlledJob> cjobs(running.size());
  std::vector<double> prev_caps(running.size());
  for (std::size_t i = 0; i < running.size(); ++i) {
    const sched::Job& job = *running[i];
    auto it = estimators_.find(job.spec().id);
    PERQ_ASSERT(it != estimators_.end(), "running job without estimator");
    control::JobEstimator& est = it->second;
    if (job.last_cap_w() > 0.0) {
      const double per_node_ips =
          job.last_job_ips() / static_cast<double>(job.spec().nodes);
      est.update(job.last_cap_w(), per_node_ips);
      prev_caps[i] = job.last_cap_w();
    } else {
      // First interval of the job: no measurement yet; the Delta-P anchor
      // is the fair share (a neutral starting point).
      prev_caps[i] = fair_anchor_w;
    }
    cjobs[i] = {&job, &est};
  }

  // 2. Targets for this decision instant (they move as jobs arrive/finish
  //    and change phases -- paper Sec. 2.4.1).
  const control::Targets targets = targets_.generate(cjobs, ctx.fair_cap_w);
  for (std::size_t i = 0; i < running.size(); ++i) {
    last_targets_[running[i]->spec().id] = targets.job_target_ips[i];
  }

  // 3. One constrained MPC solve; apply the first step of the plan.
  control::MpcDecision decision =
      mpc_.decide(cjobs, targets, prev_caps, ctx.budget_for_busy_w);

  // 3b. Degradation ladder, last rung. qp::solve already degrades from the
  // certified active set to projected gradient; when even that exhausts its
  // iteration budget (kMaxIterations) or the instance is reported
  // infeasible, the iterate is uncertified and may be arbitrarily far from
  // the fair optimum -- so degrade to the one allocation that is safe and
  // fair with no solve at all: every node the same share of the busy
  // budget. enforce_budget below re-establishes the budget invariant
  // exactly as for any other allocation.
  const bool solver_degraded = decision.status != qp::SolveStatus::kOptimal;
  if (solver_degraded) {
    ++counters_.solver_fallbacks;
    double busy_nodes = 0.0;
    for (const auto* job : running) {
      busy_nodes += static_cast<double>(job->spec().nodes);
    }
    const auto& spec = apps::node_power_spec();
    const double share =
        std::clamp(ctx.budget_for_busy_w / busy_nodes, spec.cap_min, spec.tdp);
    decision.caps_w.assign(running.size(), share);
  }

  // 4. Probing dither: a small square wave on top of the MPC caps keeps the
  //    per-job sensitivity estimates identifiable (persistent excitation;
  //    without it the estimator/controller pair can deadlock in a
  //    no-information equilibrium). The dither is one-sided (+amp / 0, half
  //    the jobs at a time) so it never pushes a job below the MPC plan --
  //    performance curves are monotone, so probing is never harmful to the
  //    probed job.
  if (cfg_.dither_w > 0.0) {
    const auto& spec = apps::node_power_spec();
    const bool flip = (tick_ / std::max<std::size_t>(1, cfg_.dither_period)) % 2 == 0;
    for (std::size_t i = 0; i < running.size(); ++i) {
      const bool up = ((running[i]->spec().id % 2 == 0) == flip);
      if (up) {
        decision.caps_w[i] =
            std::clamp(decision.caps_w[i] + cfg_.dither_w, spec.cap_min, spec.tdp);
      }
    }
  }
  ++tick_;
  decision_seconds_.push_back(timer.seconds());

  std::vector<double> caps =
      policy::enforce_budget(running, decision.caps_w, ctx.budget_for_busy_w);

  // Demand summary for the hierarchical arbiter: what this scope committed,
  // what one more watt would have bought, and achieved-vs-target IPS.
  feedback_ = DomainFeedback{};
  feedback_.valid = true;
  for (std::size_t i = 0; i < running.size(); ++i) {
    const double nodes = static_cast<double>(running[i]->spec().nodes);
    feedback_.busy_nodes += nodes;
    feedback_.committed_w += nodes * caps[i];
    feedback_.achieved_ips += running[i]->last_job_ips();
    feedback_.target_ips += targets.job_target_ips[i];
  }
  feedback_.utility_per_w = solver_degraded ? 0.0 : decision.budget_dual_per_w;

  return caps;
}

}  // namespace perq::core
