// The PERQ power-provisioning policy: target generator + MPC controller
// behind the common PowerPolicy interface (paper Fig. 4 control loop).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "control/mpc.hpp"
#include "core/robustness.hpp"
#include "policy/policy.hpp"
#include "sysid/identify.hpp"

namespace perq::core {

struct PerqConfig {
  control::MpcConfig mpc;
  control::EstimatorConfig estimator;
  /// System-throughput-improvement ratio (Fig. 10a sweep; paper recommends
  /// >= 4 so the system target pulls rather than caps).
  double improvement_ratio = 8.0;
  /// Probing dither amplitude (W). Adaptive control needs persistent
  /// excitation: a small budget-neutral square wave (half the jobs up, half
  /// down, alternating) keeps each job's power-cap sensitivity identifiable
  /// even when the MPC would otherwise hold caps constant. 0 disables.
  double dither_w = 6.0;
  /// Dither half-period in control intervals.
  std::size_t dither_period = 2;
};

/// Complete adaptive state of a PerqPolicy: everything that influences
/// future decisions beyond the (immutable) configuration and node model.
/// snapshot()/restore() round-trip it exactly, so a controller restarted
/// from a snapshot continues with bit-identical cap plans.
struct PerqPolicyState {
  std::uint64_t tick = 0;
  std::vector<std::pair<int, control::EstimatorState>> estimators;
  std::vector<std::pair<int, double>> last_targets;
  control::MpcController::WarmState mpc;
  /// Degradation-ladder activations so far (robustness accounting; carried
  /// through restarts so counters never silently reset).
  std::uint64_t solver_fallbacks = 0;
};

/// Demand summary of the most recent allocate(), in the shape the
/// hierarchical BudgetArbiter consumes: how many watts the scope committed,
/// what one more watt would have been worth (the QP budget dual), and
/// achieved-vs-target throughput. Derived per-tick -- not part of the
/// snapshot state; after a restore the first allocate() refills it.
struct DomainFeedback {
  bool valid = false;          ///< at least one allocate() has run
  double busy_nodes = 0.0;     ///< nodes under the jobs of the last batch
  double committed_w = 0.0;    ///< watts the returned caps actually commit
  double utility_per_w = 0.0;  ///< budget-row dual (0 when slack or degraded)
  double achieved_ips = 0.0;   ///< measured aggregate IPS last interval
  double target_ips = 0.0;     ///< summed fairness targets
};

class PerqPolicy final : public policy::PowerPolicy {
 public:
  /// `node_model` must outlive the policy; `worst_case_nodes` / `total_nodes`
  /// size the fairness and throughput targets.
  PerqPolicy(const sysid::IdentifiedModel* node_model, std::size_t worst_case_nodes,
             std::size_t total_nodes, const PerqConfig& cfg = {});

  std::string name() const override { return "PERQ"; }

  std::vector<double> allocate(const policy::PolicyContext& ctx) override;

  void on_job_started(const sched::Job& job) override;
  void on_job_finished(const sched::Job& job) override;

  double target_ips(int job_id) const override;

  /// Wall-clock seconds spent in each controller decision (Fig. 13 data).
  const std::vector<double>& decision_seconds() const { return decision_seconds_; }

  /// The estimator of a running job (test/analysis hook); null if unknown.
  const control::JobEstimator* estimator(int job_id) const;

  const PerqConfig& config() const { return cfg_; }

  /// Robustness accounting: currently only `solver_fallbacks`, counting
  /// decisions where the QP ladder (active set -> projected gradient inside
  /// qp::solve) failed to certify and the policy degraded to the equal-share
  /// allocation -- the last rung, always feasible and fair by construction.
  const RobustnessCounters& counters() const { return counters_; }

  /// Demand summary of the most recent allocate() (hier arbiter input).
  const DomainFeedback& last_feedback() const { return feedback_; }

  /// Snapshot / restore of the full adaptive state (perqd controller
  /// restarts). The restored policy must have been built with the same node
  /// model and configuration.
  PerqPolicyState snapshot() const;
  void restore(const PerqPolicyState& s);

 private:
  const sysid::IdentifiedModel* model_;
  PerqConfig cfg_;
  control::TargetGenerator targets_;
  control::MpcController mpc_;
  std::map<int, control::JobEstimator> estimators_;
  std::map<int, double> last_targets_;
  std::vector<double> decision_seconds_;
  std::size_t tick_ = 0;
  RobustnessCounters counters_;
  DomainFeedback feedback_;
};

}  // namespace perq::core
