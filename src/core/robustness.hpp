// Robustness accounting shared by the control loop's layers.
//
// Every defensive mechanism added for fault tolerance -- corrupt-frame
// rejection, reconnect backoff, staleness handling, the solver degradation
// ladder, the pre-broadcast cap clamp -- increments one of these counters,
// so a chaos run (or an operator watching perqd) can tell *which* defenses
// actually fired instead of inferring health from silence. The counters are
// plain data: the controller folds them into its snapshot so a restarted
// daemon keeps its history, and the perqd/perq_agent CLIs print them.
#pragma once

#include <cstdint>
#include <string>

namespace perq::core {

struct RobustnessCounters {
  /// Frames the plant discarded without applying (invalid or budget-violating
  /// cap plans held instead of actuated).
  std::uint64_t frames_dropped = 0;
  /// Corrupt input rejected: poisoned connection streams reaped by the
  /// controller plus semantically invalid telemetry/heartbeat frames
  /// (non-finite values, impossible node counts, inconsistent budgets).
  std::uint64_t frames_corrupt = 0;
  /// Plant-side reconnect attempts (successful or not) made through the
  /// backoff schedule.
  std::uint64_t reconnect_attempts = 0;
  /// Agent sessions that crossed from live to stale (heartbeat timeout).
  std::uint64_t stale_transitions = 0;
  /// Decisions where the QP ladder degraded past the certified solve
  /// (active set -> projected gradient already inside qp::solve; this counts
  /// the final equal-share step).
  std::uint64_t solver_fallbacks = 0;
  /// Decisions where the controller's defensive clamp had to adjust a cap
  /// plan (box bounds or budget row) before broadcast.
  std::uint64_t clamp_activations = 0;
  /// Ticks where the plant's agent-local fail-safe decayed held caps toward
  /// the safe floor because no plan had arrived for the configured number
  /// of intervals (controller presumed dead, caps must not stay high).
  std::uint64_t failsafe_activations = 0;
  /// Frames rejected by epoch fencing: a deposed controller (or a report
  /// from one, at the arbiter) kept talking after a newer epoch was seen.
  std::uint64_t stale_epoch_frames = 0;
  /// Grants frozen for a silent child (arbiter side: a domain stopped
  /// reporting and its held grant was fenced off the pool) or discarded by
  /// a re-parenting child (controller side: the old parent's grant must
  /// never be drawn again once a new parent is dialed).
  std::uint64_t grants_fenced = 0;
  /// Runtime topology changes: a node detached from its parent arbiter and
  /// re-attached elsewhere in the power tree.
  std::uint64_t reparent_events = 0;
  /// Water-fill rounds where a tenant's SLA power floor lifted its demand
  /// floor above the physical nj * P_min (the floor actually shaped the
  /// allocation, instead of being dominated by the busy-node floor).
  std::uint64_t sla_floor_activations = 0;

  RobustnessCounters& operator+=(const RobustnessCounters& o) {
    frames_dropped += o.frames_dropped;
    frames_corrupt += o.frames_corrupt;
    reconnect_attempts += o.reconnect_attempts;
    stale_transitions += o.stale_transitions;
    solver_fallbacks += o.solver_fallbacks;
    clamp_activations += o.clamp_activations;
    failsafe_activations += o.failsafe_activations;
    stale_epoch_frames += o.stale_epoch_frames;
    grants_fenced += o.grants_fenced;
    reparent_events += o.reparent_events;
    sla_floor_activations += o.sla_floor_activations;
    return *this;
  }

  std::uint64_t total() const {
    return frames_dropped + frames_corrupt + reconnect_attempts +
           stale_transitions + solver_fallbacks + clamp_activations +
           failsafe_activations + stale_epoch_frames + grants_fenced +
           reparent_events + sla_floor_activations;
  }
};

/// One-line human-readable rendering for the CLIs and chaos reports.
std::string to_string(const RobustnessCounters& c);

}  // namespace perq::core
