#include "core/node_model.hpp"

#include "apps/catalog.hpp"
#include "sim/node.hpp"
#include "util/require.hpp"

namespace perq::core {

std::vector<sysid::ExcitationData> collect_training_segments(std::uint64_t seed,
                                                             std::size_t samples_per_app,
                                                             double interval_s) {
  PERQ_REQUIRE(samples_per_app >= 64, "need at least 64 samples per app");
  PERQ_REQUIRE(interval_s > 0.0, "interval must be positive");

  const auto& suite = apps::training_catalog();
  const auto& spec = apps::node_power_spec();
  Rng seeder(seed);

  std::vector<sysid::ExcitationData> segments;
  segments.reserve(suite.size());
  for (std::size_t a = 0; a < suite.size(); ++a) {
    const auto& app = suite[a];
    sim::Node node(a, seeder.split());
    // Training runs pin each benchmark to one phase (a controlled,
    // steady-kernel run). Phase-to-phase variation is colored disturbance
    // that would bias the ARX fit toward the autoregressive terms and
    // shrink the input gain; online, the per-job estimator's offset tracks
    // phases instead.
    const sysid::Plant plant = [&](double cap) {
      node.set_cap(cap);
      return node.step_busy(interval_s, app, 0).ips;
    };
    sysid::ExcitationConfig cfg;
    cfg.cap_min = spec.cap_min;
    cfg.cap_max = spec.tdp;
    cfg.samples = samples_per_app;
    cfg.hold_min = 3;
    cfg.hold_max = 12;
    cfg.seed = seeder();
    segments.push_back(sysid::collect_excitation(plant, cfg));
  }
  return segments;
}

sysid::ExcitationData collect_training_data(std::uint64_t seed,
                                            std::size_t samples_per_app,
                                            double interval_s) {
  sysid::ExcitationData all;
  for (const auto& seg : collect_training_segments(seed, samples_per_app, interval_s)) {
    all.u.insert(all.u.end(), seg.u.begin(), seg.u.end());
    all.y.insert(all.y.end(), seg.y.begin(), seg.y.end());
  }
  return all;
}

sysid::IdentifiedModel identify_node_model(std::uint64_t seed) {
  return sysid::identify_segments(collect_training_segments(seed, 600, 10.0), 3, 3);
}

const sysid::IdentifiedModel& canonical_node_model() {
  static const sysid::IdentifiedModel model = identify_node_model(0x9e2a5c3b1d4f7081ull);
  return model;
}

}  // namespace perq::core
