// End-to-end experiment engine: trace -> scheduler -> policy -> cluster,
// stepped at the control interval for a configurable wall-clock horizon.
//
// This is the simulation harness behind every evaluation figure (paper
// Sec. 3): the same engine runs FOP/SJS/LJS/SRN and PERQ so that throughput
// and fairness differences are attributable to power allocation alone.
//
// The engine exposes a tick-level API so the same experiment can run either
// in-process (run_experiment drives a PowerPolicy directly) or through the
// perqd daemon (node agents publish each tick's telemetry, a remote
// controller answers with a cap plan). One control interval is three calls:
//
//   begin_tick()   start whatever fits (FCFS + backfill), expose the tick
//   apply_caps()   commit the per-job caps decided for this interval
//   advance()      step the physical system, record, retire finished jobs
//
// The split is exact: run_experiment() is a thin loop over these phases and
// produces bit-identical results to the pre-split monolithic loop.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/cluster.hpp"
#include "sim/node.hpp"
#include "trace/trace.hpp"

namespace perq::core {

struct EngineConfig {
  trace::TraceConfig trace;             ///< workload (system, jobs, seed)
  std::size_t worst_case_nodes = 128;   ///< N_WP
  double over_provision_factor = 2.0;   ///< f
  double duration_s = 86400.0;          ///< simulated horizon (24 h default)
  double control_interval_s = 10.0;     ///< decision interval (Fig. 9 sweep)
  std::uint64_t cluster_seed = 7;       ///< node-noise seeds
  sim::NodeConfig node;                 ///< per-node simulation tunables
  std::size_t backfill_window = 64;     ///< scheduler lookahead
  sched::BackfillMode backfill_mode = sched::BackfillMode::kAggressive;
  /// Aggressive-backfill starvation guard (see Scheduler); 0 = unlimited.
  std::size_t backfill_max_head_bypass = 0;
  std::vector<int> traced_jobs;         ///< ids to record per-interval series for
};

/// Completed-job record.
struct JobOutcome {
  int id = 0;
  std::size_t nodes = 0;
  std::size_t app_index = 0;
  double runtime_ref_s = 0.0;  ///< trace reference runtime (at TDP)
  double start_s = 0.0;
  double finish_s = 0.0;
  double runtime_s = 0.0;      ///< actual wall-clock runtime
};

/// One per-interval sample of a traced job (Fig. 8 / Fig. 12 series).
struct TracePoint {
  double t_s = 0.0;
  int job_id = 0;
  double cap_w = 0.0;        ///< per-node cap applied to the job
  double job_ips = 0.0;      ///< measured aggregate IPS
  double target_ips = 0.0;   ///< policy's job-level target (0 for baselines)
  double perf_fraction = 0.0;///< slowest rank's true performance fraction
};

struct RunResult {
  std::string policy_name;
  double over_provision_factor = 1.0;
  double duration_s = 0.0;
  std::size_t jobs_completed = 0;
  std::vector<JobOutcome> finished;
  std::vector<double> decision_seconds;  ///< policy decision latency per interval
  std::vector<TracePoint> traces;
  double mean_power_draw_w = 0.0;        ///< time-average total draw
  double peak_committed_w = 0.0;         ///< max sum of caps + idle floor seen
};

/// Everything an external cap source (the daemon's node agents) needs to
/// know about the tick that just began. Job pointers stay valid for the
/// whole experiment; `running` order is the engine's canonical job order
/// (caps are aligned with it).
struct TickView {
  std::uint64_t tick = 0;
  double now_s = 0.0;
  double dt_s = 0.0;
  double budget_total_w = 0.0;
  double budget_for_busy_w = 0.0;
  double total_nodes = 0.0;
  std::vector<const sched::Job*> started;  ///< jobs started this tick
  std::vector<const sched::Job*> running;  ///< all running jobs, engine order
  std::vector<double> job_power_w;         ///< last-interval draw per running job
  /// Jobs retired during the previous advance(), with the lead node each
  /// occupied (Job::finish clears node_ids, and agents route by lead node).
  std::vector<std::pair<const sched::Job*, std::size_t>> finished;
};

/// Tick-stepped experiment engine.
class SimulationEngine {
 public:
  explicit SimulationEngine(const EngineConfig& cfg);

  /// True once the simulated horizon is exhausted.
  bool done() const { return now_s_ >= cfg_.duration_s; }

  const EngineConfig& config() const { return cfg_; }
  sim::Cluster& cluster() { return cluster_; }
  const sim::Cluster& cluster() const { return cluster_; }
  std::uint64_t tick() const { return tick_; }
  double now_s() const { return now_s_; }
  const std::vector<sched::Job*>& running() const { return running_; }

  /// Phase 1: starts whatever fits (FCFS + backfill) and exposes the tick.
  const TickView& begin_tick();

  /// The policy-context snapshot for the current tick (valid between
  /// begin_tick() and advance()).
  policy::PolicyContext context() const;

  /// Phase 2: commits this interval's per-job caps, aligned with
  /// running(). Empty `caps_w` is allowed only when nothing runs (or, for
  /// robustness paths, records 0 W without actuating). When `actuate` is
  /// true the caps are pushed to every node of every job; daemon runs pass
  /// false because the node agents already actuated their own nodes, so the
  /// engine only does the bookkeeping (budget check, peak tracking, what
  /// cap to attribute to each job's recorded interval).
  void apply_caps(std::vector<double> caps_w, std::vector<double> target_ips = {},
                  bool actuate = true);

  /// Records one controller decision latency sample (Fig. 13 data).
  void note_decision_time(double seconds);

  /// Hier mode: registers this tick's per-domain watt grants so apply_caps
  /// can check the committed caps against each domain's allocation rather
  /// than only the cluster-wide row. `domain_of_job[i]` maps running()[i]
  /// to its domain (values < grants_w.size()). The registration is valid
  /// for the current tick only (advance() clears it); when never called,
  /// apply_caps enforces just the monolithic cluster budget, exactly as
  /// before the refactor.
  void set_domain_grants(std::vector<double> grants_w,
                         std::vector<std::uint32_t> domain_of_job);

  /// Phase 3: advances the physical system one interval and retires
  /// completed jobs.
  void advance();

  /// Jobs retired by the last advance() (pointers stay valid).
  const std::vector<std::pair<const sched::Job*, std::size_t>>& last_finished()
      const {
    return finished_last_;
  }

  /// Finalizes and moves out the result. Call once, after the horizon.
  RunResult finish(std::string policy_name);

 private:
  enum class Phase { kIdle, kAwaitCaps, kAwaitAdvance };

  EngineConfig cfg_;
  sim::Cluster cluster_;
  std::vector<sched::Job> jobs_;  ///< owning storage; never reallocated
  /// Arrival plumbing: job indices sorted by (submit_time, id); the prefix
  /// [0, next_arrival_) has been handed to the scheduler. Traces without
  /// submit times collapse to "everything arrives before the first tick",
  /// which is bit-identical to the pre-arrival enqueue-all-in-constructor.
  std::vector<std::size_t> arrival_order_;
  std::size_t next_arrival_ = 0;
  sched::Scheduler scheduler_;
  std::vector<sched::Job*> running_;
  std::vector<double> last_power_;  ///< last-interval draw, aligned with running_
  std::vector<int> traced_sorted_;
  Phase phase_ = Phase::kIdle;
  std::uint64_t tick_ = 0;
  double now_s_ = 0.0;
  double energy_j_ = 0.0;
  std::vector<double> pending_caps_;
  std::vector<double> pending_targets_;
  /// Parallel-advance scratch: per-job physics results computed in phase A
  /// (one slot per running job, disjoint writes) and committed serially in
  /// job order in phase B, so the parallel decomposition is bit-identical
  /// to the old single loop.
  struct JobAdvance {
    double draw_w = 0.0;
    double min_ips = 0.0;
    double min_perf = 0.0;
  };
  std::vector<JobAdvance> advance_scratch_;
  std::vector<double> domain_grants_w_;       ///< this tick's grants (hier)
  std::vector<std::uint32_t> domain_of_job_;  ///< running_[i] -> domain id
  std::vector<std::pair<const sched::Job*, std::size_t>> finished_last_;
  TickView view_;
  RunResult result_;
};

/// Runs one experiment. The policy is driven for the full horizon; jobs
/// still running at the end are not counted as completed.
RunResult run_experiment(const EngineConfig& cfg, policy::PowerPolicy& policy);

/// Convenience: how many jobs the trace config should contain so the queue
/// never drains over the horizon (the paper keeps the backlog full).
std::size_t recommended_job_count(const EngineConfig& cfg);

}  // namespace perq::core
