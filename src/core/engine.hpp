// End-to-end experiment engine: trace -> scheduler -> policy -> cluster,
// stepped at the control interval for a configurable wall-clock horizon.
//
// This is the simulation harness behind every evaluation figure (paper
// Sec. 3): the same engine runs FOP/SJS/LJS/SRN and PERQ so that throughput
// and fairness differences are attributable to power allocation alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/policy.hpp"
#include "sched/scheduler.hpp"
#include "sim/node.hpp"
#include "trace/trace.hpp"

namespace perq::core {

struct EngineConfig {
  trace::TraceConfig trace;             ///< workload (system, jobs, seed)
  std::size_t worst_case_nodes = 128;   ///< N_WP
  double over_provision_factor = 2.0;   ///< f
  double duration_s = 86400.0;          ///< simulated horizon (24 h default)
  double control_interval_s = 10.0;     ///< decision interval (Fig. 9 sweep)
  std::uint64_t cluster_seed = 7;       ///< node-noise seeds
  sim::NodeConfig node;                 ///< per-node simulation tunables
  std::size_t backfill_window = 64;     ///< scheduler lookahead
  sched::BackfillMode backfill_mode = sched::BackfillMode::kAggressive;
  std::vector<int> traced_jobs;         ///< ids to record per-interval series for
};

/// Completed-job record.
struct JobOutcome {
  int id = 0;
  std::size_t nodes = 0;
  std::size_t app_index = 0;
  double runtime_ref_s = 0.0;  ///< trace reference runtime (at TDP)
  double start_s = 0.0;
  double finish_s = 0.0;
  double runtime_s = 0.0;      ///< actual wall-clock runtime
};

/// One per-interval sample of a traced job (Fig. 8 / Fig. 12 series).
struct TracePoint {
  double t_s = 0.0;
  int job_id = 0;
  double cap_w = 0.0;        ///< per-node cap applied to the job
  double job_ips = 0.0;      ///< measured aggregate IPS
  double target_ips = 0.0;   ///< policy's job-level target (0 for baselines)
  double perf_fraction = 0.0;///< slowest rank's true performance fraction
};

struct RunResult {
  std::string policy_name;
  double over_provision_factor = 1.0;
  double duration_s = 0.0;
  std::size_t jobs_completed = 0;
  std::vector<JobOutcome> finished;
  std::vector<double> decision_seconds;  ///< policy decision latency per interval
  std::vector<TracePoint> traces;
  double mean_power_draw_w = 0.0;        ///< time-average total draw
  double peak_committed_w = 0.0;         ///< max sum of caps + idle floor seen
};

/// Runs one experiment. The policy is driven for the full horizon; jobs
/// still running at the end are not counted as completed.
RunResult run_experiment(const EngineConfig& cfg, policy::PowerPolicy& policy);

/// Convenience: how many jobs the trace config should contain so the queue
/// never drains over the horizon (the paper keeps the backlog full).
std::size_t recommended_job_count(const EngineConfig& cfg);

}  // namespace perq::core
