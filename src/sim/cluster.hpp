// Over-provisioned cluster: node pool, free-list, and power-budget
// accounting.
//
// An over-provisioned system has node_count = f * worst_case_nodes but only
// worst_case_nodes * TDP of power (paper Sec. 1). The cluster enforces the
// cap-sum invariant: the sum of all requested node caps (busy jobs at their
// policy caps, idle nodes at the idle floor) must stay within the budget.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/node.hpp"

namespace perq::sim {

/// Sizing of an over-provisioned cluster.
struct ClusterConfig {
  std::size_t worst_case_nodes = 128;  ///< N_WP: nodes a worst-case system powers at TDP
  double over_provision_factor = 1.0;  ///< f >= 1; N_OP = round(f * N_WP)
  NodeConfig node;                     ///< per-node simulation tunables
  std::uint64_t seed = 42;             ///< seeds per-node noise streams

  std::size_t total_nodes() const;
  double power_budget_w() const;  ///< N_WP * TDP
};

/// The simulated machine.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);

  std::size_t size() const { return nodes_.size(); }
  std::size_t worst_case_nodes() const { return cfg_.worst_case_nodes; }
  double over_provision_factor() const { return cfg_.over_provision_factor; }
  double power_budget_w() const { return cfg_.power_budget_w(); }

  Node& node(std::size_t id);
  const Node& node(std::size_t id) const;

  std::size_t free_count() const { return free_.size(); }

  /// Takes `count` nodes from the free list; returns their ids, or an empty
  /// vector when not enough nodes are free (no partial allocation).
  std::vector<std::size_t> allocate(std::size_t count);

  /// Returns nodes to the free list. Their caps are reset to the idle floor
  /// (an idle node still draws power and cannot be capped to zero -- the
  /// Fig. 12 footnote).
  void release(const std::vector<std::size_t>& ids);

  /// True when node `id` is currently allocated to a job.
  bool is_busy(std::size_t id) const;

  /// Sum of *target* caps across all nodes plus the idle floor of free
  /// nodes; this is the quantity a power-capping system must keep within
  /// budget (caps are commitments, not draws).
  double committed_power_w() const;

  /// Budget available to distribute across busy nodes after reserving the
  /// idle floor for free nodes.
  double budget_for_busy_nodes_w() const;

  /// Steps every idle node by dt (busy nodes are stepped by the engine via
  /// their jobs); returns total idle draw in watts.
  double step_idle_nodes(double dt);

 private:
  ClusterConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<std::size_t> free_;   // stack of free node ids
  std::vector<bool> busy_;
};

}  // namespace perq::sim
