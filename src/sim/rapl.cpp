#include "sim/rapl.hpp"

#include <cmath>

#include "util/require.hpp"

namespace perq::sim {

void RaplEnergyCounter::accumulate_joules(double joules) {
  PERQ_REQUIRE(joules >= 0.0, "energy must be non-negative");
  lifetime_joules_ += joules;
  const double counts_exact = joules / kJoulesPerCount + residual_;
  const double whole = std::floor(counts_exact);
  residual_ = counts_exact - whole;
  // 32-bit wraparound is the defining behavior of the register.
  raw_ = static_cast<std::uint32_t>(raw_ + static_cast<std::uint64_t>(whole));
}

double RaplEnergyCounter::energy_since_joules(std::uint32_t previous_raw) const {
  // Unsigned subtraction corrects exactly one wraparound.
  const std::uint32_t delta = raw_ - previous_raw;
  return static_cast<double>(delta) * kJoulesPerCount;
}

double RaplEnergyCounter::average_power_w(std::uint32_t previous_raw,
                                          double interval_s) const {
  PERQ_REQUIRE(interval_s > 0.0, "interval must be positive");
  return energy_since_joules(previous_raw) / interval_s;
}

}  // namespace perq::sim
