// Simulated compute node with RAPL-like power capping.
//
// Replaces the paper's Tardis prototype hardware. The two behaviors that
// matter to the controller are modeled explicitly:
//   * actuation lag -- RAPL caps take effect over a short horizon, modeled
//     as a first-order response toward the set cap (this is the dynamics the
//     3rd-order state-space model captures), and
//   * measurement noise -- per-node multiplicative noise on reported IPS
//     (OS jitter, sampling error), which makes the min-over-ranks job
//     indicator meaningful.
#pragma once

#include <cstddef>

#include "apps/app_model.hpp"
#include "sim/rapl.hpp"
#include "util/rng.hpp"

namespace perq::sim {

/// Tunables of the node simulation.
struct NodeConfig {
  double cap_lag_tau_s = 4.0;    ///< first-order time constant of cap actuation
  double ips_noise_sigma = 0.02; ///< relative std-dev of IPS measurement noise
  /// Manufacturing variability: each node gets a fixed performance
  /// multiplier drawn once at construction from N(1, sigma), clamped to
  /// [0.85, 1.15]. Real processors of the same SKU differ by several
  /// percent under power caps (the effect the paper cites from Mueller et
  /// al.'s manufacturing-variation study). 0 disables.
  double perf_variability_sigma = 0.0;
};

/// One measurement interval's observation from a node.
struct NodeSample {
  double ips = 0.0;      ///< measured instructions/second (noisy)
  double power_w = 0.0;  ///< average power drawn over the interval
};

/// A simulated node. Ownership of job state lives in the scheduler; the node
/// only tracks its power-cap actuation state and noise stream.
class Node {
 public:
  Node(std::size_t id, Rng noise, const NodeConfig& cfg = {});

  std::size_t id() const { return id_; }

  /// Requests a new power-cap (clamped to [cap_min, tdp]). Takes effect
  /// gradually per the actuation lag.
  void set_cap(double watts);

  /// The cap requested by the controller.
  double target_cap() const { return target_cap_; }

  /// The cap currently enforced by the (simulated) RAPL hardware.
  double effective_cap() const { return effective_cap_; }

  /// Advances the actuation state by dt and samples the node running `app`
  /// in `phase_idx`. Returns noisy IPS and the power drawn.
  NodeSample step_busy(double dt, const apps::AppModel& app, std::size_t phase_idx);

  /// Advances dt with no job: draws idle power, zero IPS.
  NodeSample step_idle(double dt);

  /// Deterministic (noise-free) performance fraction the node would deliver
  /// for `app` at the *current effective* cap, including this node's
  /// manufacturing multiplier. Exposed for tests and used by the engine for
  /// job progress (the slowest rank gates the job).
  double perf_fraction(const apps::AppModel& app, std::size_t phase_idx) const;

  /// This node's fixed manufacturing performance multiplier (1.0 when
  /// variability is disabled).
  double perf_scale() const { return perf_scale_; }

  /// The node's emulated RAPL package-energy counter (fed by every step).
  const RaplEnergyCounter& rapl() const { return rapl_; }

 private:
  void advance_cap(double dt);

  std::size_t id_;
  Rng rng_;
  NodeConfig cfg_;
  double target_cap_;
  double effective_cap_;
  double perf_scale_ = 1.0;
  RaplEnergyCounter rapl_;
};

}  // namespace perq::sim
