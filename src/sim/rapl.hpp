// RAPL energy-counter emulation.
//
// Intel's Running Average Power Limit interface (paper Sec. 2.4.4) exposes
// package energy through MSR_PKG_ENERGY_STATUS: a 32-bit register counting
// energy in units of 2^-16 J (~15.3 uJ) that silently wraps. Production
// power monitors estimate power by sampling the register and dividing the
// (wraparound-corrected) energy delta by the sampling interval. This class
// reproduces that contract so PERQ's measurement path mirrors real nodes.
#pragma once

#include <cstdint>

namespace perq::sim {

class RaplEnergyCounter {
 public:
  /// Energy unit of the emulated register (joules per count): 2^-16 J, the
  /// common Intel ENERGY_STATUS_UNITS value.
  static constexpr double kJoulesPerCount = 1.0 / 65536.0;

  /// Adds consumed energy (joules >= 0) to the register, wrapping at 2^32.
  void accumulate_joules(double joules);

  /// Raw 32-bit register value, as software would read the MSR.
  std::uint32_t read_raw() const { return raw_; }

  /// Energy (joules) elapsed since a previous raw reading, correcting for a
  /// single wraparound (readers must sample faster than the wrap period,
  /// exactly as on real hardware).
  double energy_since_joules(std::uint32_t previous_raw) const;

  /// Average power (watts) between a previous reading and now, over
  /// `interval_s` seconds (> 0).
  double average_power_w(std::uint32_t previous_raw, double interval_s) const;

  /// Total energy accumulated since construction (joules; no wraparound --
  /// this is simulator-side bookkeeping, not part of the emulated MSR).
  double lifetime_joules() const { return lifetime_joules_; }

 private:
  std::uint32_t raw_ = 0;
  double residual_ = 0.0;  // sub-count remainder so no energy is lost
  double lifetime_joules_ = 0.0;
};

}  // namespace perq::sim
