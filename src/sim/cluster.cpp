#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace perq::sim {

std::size_t ClusterConfig::total_nodes() const {
  return static_cast<std::size_t>(
      std::llround(over_provision_factor * static_cast<double>(worst_case_nodes)));
}

double ClusterConfig::power_budget_w() const {
  return static_cast<double>(worst_case_nodes) * apps::node_power_spec().tdp;
}

Cluster::Cluster(const ClusterConfig& cfg) : cfg_(cfg) {
  PERQ_REQUIRE(cfg_.worst_case_nodes >= 1, "cluster needs at least one node");
  PERQ_REQUIRE(cfg_.over_provision_factor >= 1.0, "over-provisioning factor >= 1");
  const std::size_t n = cfg_.total_nodes();
  Rng seeder(cfg_.seed);
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(i, seeder.split(), cfg_.node);
    // Free nodes idle at the minimum cap.
    nodes_.back().set_cap(apps::node_power_spec().cap_min);
  }
  busy_.assign(n, false);
  free_.resize(n);
  // Allocate low ids first (free_ is used as a stack from the back).
  for (std::size_t i = 0; i < n; ++i) free_[i] = n - 1 - i;
}

Node& Cluster::node(std::size_t id) {
  PERQ_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

const Node& Cluster::node(std::size_t id) const {
  PERQ_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

std::vector<std::size_t> Cluster::allocate(std::size_t count) {
  PERQ_REQUIRE(count >= 1, "allocation must request at least one node");
  if (count > free_.size()) return {};
  std::vector<std::size_t> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ids.push_back(free_.back());
    free_.pop_back();
    busy_[ids.back()] = true;
  }
  return ids;
}

void Cluster::release(const std::vector<std::size_t>& ids) {
  for (std::size_t id : ids) {
    PERQ_REQUIRE(id < nodes_.size(), "node id out of range");
    PERQ_REQUIRE(busy_[id], "releasing a node that is not busy");
    busy_[id] = false;
    nodes_[id].set_cap(apps::node_power_spec().cap_min);
    free_.push_back(id);
  }
}

bool Cluster::is_busy(std::size_t id) const {
  PERQ_REQUIRE(id < nodes_.size(), "node id out of range");
  return busy_[id];
}

double Cluster::committed_power_w() const {
  double total = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    total += busy_[i] ? nodes_[i].target_cap() : apps::node_power_spec().idle;
  }
  return total;
}

double Cluster::budget_for_busy_nodes_w() const {
  const double idle_reserve =
      static_cast<double>(free_.size()) * apps::node_power_spec().idle;
  return std::max(0.0, power_budget_w() - idle_reserve);
}

double Cluster::step_idle_nodes(double dt) {
  double draw = 0.0;
  for (std::size_t id : free_) draw += nodes_[id].step_idle(dt).power_w;
  return draw;
}

}  // namespace perq::sim
