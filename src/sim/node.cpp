#include "sim/node.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace perq::sim {

Node::Node(std::size_t id, Rng noise, const NodeConfig& cfg)
    : id_(id), rng_(noise), cfg_(cfg) {
  PERQ_REQUIRE(cfg_.cap_lag_tau_s >= 0.0, "cap lag must be non-negative");
  PERQ_REQUIRE(cfg_.ips_noise_sigma >= 0.0, "noise sigma must be non-negative");
  PERQ_REQUIRE(cfg_.perf_variability_sigma >= 0.0,
               "variability sigma must be non-negative");
  const auto& spec = apps::node_power_spec();
  target_cap_ = spec.tdp;
  effective_cap_ = spec.tdp;
  if (cfg_.perf_variability_sigma > 0.0) {
    perf_scale_ =
        std::clamp(1.0 + rng_.normal(0.0, cfg_.perf_variability_sigma), 0.85, 1.15);
  }
}

void Node::set_cap(double watts) {
  const auto& spec = apps::node_power_spec();
  target_cap_ = std::clamp(watts, spec.cap_min, spec.tdp);
}

void Node::advance_cap(double dt) {
  PERQ_REQUIRE(dt > 0.0, "dt must be positive");
  if (cfg_.cap_lag_tau_s <= 0.0) {
    effective_cap_ = target_cap_;
    return;
  }
  const double decay = std::exp(-dt / cfg_.cap_lag_tau_s);
  effective_cap_ = target_cap_ + (effective_cap_ - target_cap_) * decay;
}

NodeSample Node::step_busy(double dt, const apps::AppModel& app,
                           std::size_t phase_idx) {
  advance_cap(dt);
  NodeSample s;
  const double noise = std::max(0.5, 1.0 + rng_.normal(0.0, cfg_.ips_noise_sigma));
  s.ips = app.node_ips(effective_cap_, phase_idx) * perf_scale_ * noise;
  s.power_w = app.power_draw_w(effective_cap_, phase_idx);
  rapl_.accumulate_joules(s.power_w * dt);
  return s;
}

NodeSample Node::step_idle(double dt) {
  advance_cap(dt);
  NodeSample s;
  s.ips = 0.0;
  s.power_w = apps::node_power_spec().idle;
  rapl_.accumulate_joules(s.power_w * dt);
  return s;
}

double Node::perf_fraction(const apps::AppModel& app, std::size_t phase_idx) const {
  return app.perf_fraction(effective_cap_, phase_idx) * perf_scale_;
}

}  // namespace perq::sim
