#include "net/reactor.hpp"

#include <errno.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <chrono>

#include "util/require.hpp"

namespace perq::net {

namespace {

// Level-triggered epoll re-reports anything not consumed, so a bounded
// per-wait event batch drops nothing -- stragglers show up on the next
// wait() at the same readiness level.
constexpr int kMaxEventsPerWait = 256;

int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

}  // namespace

Reactor::Backend Reactor::default_backend() {
#ifdef __linux__
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

Reactor::Reactor(Backend backend) : backend_(backend) {
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    PERQ_ASSERT(epfd_ >= 0, "epoll_create1 failed");
  }
#else
  backend_ = Backend::kPoll;
#endif
}

Reactor::~Reactor() {
  if (epfd_ >= 0) ::close(epfd_);
}

void Reactor::add(int fd) {
  if (fd < 0) return;
  const auto it = std::lower_bound(fds_.begin(), fds_.end(), fd);
  if (it != fds_.end() && *it == fd) return;  // already registered
  const auto idx = it - fds_.begin();  // insert() below invalidates `it`
  fds_.insert(it, fd);
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    struct epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered
    ev.data.fd = fd;
    const int rc = ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
    PERQ_ASSERT(rc == 0 || errno == EEXIST, "epoll_ctl(ADD) failed");
    return;
  }
#endif
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  pfds_.insert(pfds_.begin() + idx, p);
}

void Reactor::remove(int fd) {
  if (fd < 0) return;
  const auto it = std::lower_bound(fds_.begin(), fds_.end(), fd);
  if (it == fds_.end() || *it != fd) return;  // not registered
  const auto idx = it - fds_.begin();
  fds_.erase(it);
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    // The kernel auto-deregisters an fd when its last descriptor closes,
    // so a remove() after close() legitimately sees ENOENT/EBADF.
    struct epoll_event ev{};
    const int rc = ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
    PERQ_ASSERT(rc == 0 || errno == ENOENT || errno == EBADF,
                 "epoll_ctl(DEL) failed");
    return;
  }
#endif
  pfds_.erase(pfds_.begin() + idx);
}

int Reactor::wait(int timeout_ms) {
  ready_.clear();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  if (fds_.empty()) {
    // Nothing registered: pure pacing sleep, same as wait_readable({}, ms).
    // EINTR must be retried against the deadline like the registered paths
    // below do -- an early return here would surface as an empty readiness
    // set indistinguishable from a real timeout, silently shortening the
    // caller's pacing interval whenever a signal lands mid-sleep.
    while (timeout_ms > 0) {
      const int left = remaining_ms(deadline);
      if (left <= 0) break;
      if (::poll(nullptr, 0, left) >= 0) break;
      if (errno != EINTR) break;
    }
    return 0;
  }
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    struct epoll_event events[kMaxEventsPerWait];
    for (;;) {
      const int n =
          ::epoll_wait(epfd_, events, kMaxEventsPerWait, remaining_ms(deadline));
      if (n < 0) {
        if (errno == EINTR) continue;
        PERQ_ASSERT(false, "epoll_wait failed");
      }
      for (int i = 0; i < n; ++i) ready_.push_back(events[i].data.fd);
      // Canonical order regardless of what the kernel felt like reporting.
      std::sort(ready_.begin(), ready_.end());
      return static_cast<int>(ready_.size());
    }
  }
#endif
  for (;;) {
    const int n = ::poll(pfds_.data(), static_cast<nfds_t>(pfds_.size()), remaining_ms(deadline));
    if (n < 0) {
      if (errno == EINTR) continue;
      PERQ_ASSERT(false, "poll failed");
    }
    for (const pollfd& p : pfds_) {
      if (p.revents != 0) ready_.push_back(p.fd);
    }
    return static_cast<int>(ready_.size());  // pfds_ sorted => ready_ sorted
  }
}

}  // namespace perq::net
