// Readiness reactor: persistent fd registration instead of per-call
// pollfd reconstruction.
//
// The old data plane called net::wait_readable(fds, ms) every loop
// iteration, rebuilding a pollfd vector from scratch each time -- O(na)
// work per wait even when nothing changed. The reactor keeps the interest
// set registered across waits: callers add() an fd once when a connection
// arrives and remove() it when the connection dies, and each wait() is a
// single epoll_wait(2) (or, on the portable fallback, a poll(2) over an
// incrementally-maintained pollfd array).
//
// Backends:
//   kEpoll  Linux epoll, level-triggered. Registration is O(1) per fd and
//           the kernel hands back only the ready subset, so wait cost
//           scales with readiness, not registration count.
//   kPoll   Portable poll(2) over a persistent pollfd vector. Same
//           interface and semantics; wait cost is O(registered).
//
// Determinism: readiness *order* from epoll is unspecified, so ready() is
// always sorted ascending by fd. Callers that need canonical processing
// order (the controller's (tick, node-id) drain) must not rely on arrival
// order anyway -- the reactor only answers "which fds are readable".
//
// Negative fds (loopback connections report fd() == -1) must not be
// registered; add(-1) is ignored so callers can feed connection fds
// blindly. A wait() with an empty interest set degrades to a plain sleep
// for the timeout -- the same pacing behavior wait_readable() had -- so
// loopback-driven loops keep working unchanged.
#pragma once

#include <poll.h>

#include <cstddef>
#include <vector>

namespace perq::net {

class Reactor {
 public:
  enum class Backend { kEpoll, kPoll };

  /// kEpoll on Linux, kPoll elsewhere.
  static Backend default_backend();

  explicit Reactor(Backend backend = default_backend());
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` for readability. Ignored when fd < 0 or already
  /// registered (re-adding after a reconnect is the common caller idiom).
  void add(int fd);

  /// Deregisters `fd`. Ignored when fd < 0 or not registered. Callers must
  /// remove an fd *before* (or promptly after) closing it: the poll
  /// backend would otherwise spin on POLLNVAL, and a closed-then-reused fd
  /// number would alias a stranger's socket.
  void remove(int fd);

  /// Blocks up to `timeout_ms` for readability; returns the number of
  /// ready fds (0 on timeout) and fills ready(). EINTR is retried against
  /// the deadline. With an empty interest set this sleeps the full
  /// timeout, preserving the pacing behavior of wait_readable({}, ms).
  int wait(int timeout_ms);

  /// Fds readable at the last wait(), sorted ascending (deterministic
  /// iteration order regardless of backend).
  const std::vector<int>& ready() const { return ready_; }

  Backend backend() const { return backend_; }
  std::size_t size() const { return fds_.size(); }

  /// The backing epoll descriptor (kEpoll), or -1 on the poll backend. An
  /// epoll fd is itself pollable -- readable while events are pending --
  /// which is what lets ShardedReactor wait on S shard reactors at once
  /// without flattening their interest sets.
  int pollable_fd() const { return epfd_; }

 private:
  Backend backend_;
  int epfd_ = -1;              ///< epoll instance (kEpoll only)
  std::vector<int> fds_;       ///< registered fds, sorted ascending
  std::vector<int> ready_;     ///< result of the last wait()
  std::vector<pollfd> pfds_;   ///< kPoll: persistent array, mirrors fds_
};

}  // namespace perq::net
