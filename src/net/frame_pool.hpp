// Shared immutable frames + a reuse pool for serialize-once broadcast.
//
// The controller encodes each CapPlan exactly once into a SharedFrame and
// hands the same buffer to every connection; TCP connections queue the
// shared_ptr (no copy) and writev it out with partial-write resume. The
// pool recycles buffers: a slot whose use_count() has dropped back to 1
// (every connection finished sending it) is cleared -- capacity kept --
// and reused, so a steady-state broadcast tick allocates nothing once the
// pool has warmed up to the broadcast depth the connections can lag by.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace perq::net {

/// One encoded wire frame (length prefix included), immutable once shared.
using SharedFrame = std::shared_ptr<const std::vector<std::uint8_t>>;

class FramePool {
 public:
  /// Returns a writable buffer to encode into. Reuses the first slot no
  /// connection holds anymore; grows the pool only when every slot is
  /// still in flight.
  std::shared_ptr<std::vector<std::uint8_t>> acquire() {
    for (auto& slot : slots_) {
      if (slot.use_count() == 1) {
        slot->clear();  // capacity survives: steady state never reallocates
        return slot;
      }
    }
    slots_.push_back(std::make_shared<std::vector<std::uint8_t>>());
    return slots_.back();
  }

  /// Freezes a buffer from acquire() into the immutable broadcast view.
  /// The pool's own reference keeps the slot alive for reuse; aliasing
  /// instead of converting keeps the control block shared so use_count()
  /// still sees every outstanding connection reference.
  static SharedFrame freeze(const std::shared_ptr<std::vector<std::uint8_t>>& buf) {
    return SharedFrame(buf, buf.get());
  }

  std::size_t size() const { return slots_.size(); }

 private:
  std::vector<std::shared_ptr<std::vector<std::uint8_t>>> slots_;
};

}  // namespace perq::net
