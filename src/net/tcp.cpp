#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/tcp_connection.hpp"
#include "util/require.hpp"

namespace perq::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  PERQ_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "cannot set O_NONBLOCK");
}

/// Parses "host:port". Only numeric IPv4 and "localhost" are supported --
/// perqd is a cluster-internal service, not a general resolver client.
bool parse_address(const std::string& address, sockaddr_in* out) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos) return false;
  std::string host = address.substr(0, colon);
  const std::string port_s = address.substr(colon + 1);
  if (host == "localhost" || host.empty()) host = "127.0.0.1";
  char* end = nullptr;
  const long port = std::strtol(port_s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535) return false;
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<std::uint16_t>(port));
  return ::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

class TcpListener final : public Listener {
 public:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  ~TcpListener() override { close(); }

  std::vector<std::unique_ptr<Connection>> accept_new() override {
    std::vector<std::unique_ptr<Connection>> out;
    while (fd_ >= 0) {
      const int cfd = ::accept(fd_, nullptr, nullptr);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or error: nothing (more) pending
      }
      set_nonblocking(cfd);
      out.push_back(std::make_unique<TcpConnection>(cfd));
    }
    return out;
  }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd() const override { return fd_; }
  std::uint16_t port() const { return port_; }

 private:
  int fd_;
  std::uint16_t port_;
};

}  // namespace

std::unique_ptr<Listener> TcpTransport::listen(const std::string& address) {
  sockaddr_in addr;
  PERQ_REQUIRE(parse_address(address, &addr), "bad listen address: " + address);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PERQ_REQUIRE(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      // The controller accepts lazily (only inside pump()), so every agent
      // of a large plant may be parked in the backlog at once; 64 would
      // refuse agent 65 of a 1024-agent fleet before the first accept.
      ::listen(fd, 1024) != 0) {
    const int err = errno;
    ::close(fd);
    PERQ_REQUIRE(false, "cannot listen on " + address + ": " + std::strerror(err));
  }
  set_nonblocking(fd);
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  PERQ_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
               "getsockname() failed");
  return std::make_unique<TcpListener>(fd, ntohs(bound.sin_port));
}

std::unique_ptr<Connection> TcpTransport::connect(const std::string& address) {
  return connect_timeout(address, 5000);
}

std::unique_ptr<Connection> TcpTransport::connect_timeout(const std::string& address,
                                                          int timeout_ms) {
  sockaddr_in addr;
  PERQ_REQUIRE(parse_address(address, &addr), "bad connect address: " + address);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  PERQ_REQUIRE(fd >= 0, "socket() failed");
  set_nonblocking(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return nullptr;
    }
    // Wait for writability until the deadline. poll() returning -1 is NOT a
    // timeout: EINTR (a signal landed) retries with the remaining budget,
    // and a hard poll error gives up explicitly instead of being silently
    // folded into the timeout path.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      const int wait_ms = std::max<int>(0, static_cast<int>(left.count()));
      pollfd pfd{fd, POLLOUT, 0};
      const int n = ::poll(&pfd, 1, wait_ms);
      if (n > 0) break;
      if (n == 0 || (n < 0 && errno != EINTR) || wait_ms == 0) {
        ::close(fd);  // timeout or hard poll error
        return nullptr;
      }
      // EINTR with budget left: retry.
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  return std::make_unique<TcpConnection>(fd);
}

int wait_readable(const std::vector<int>& fds, int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds.size());
  for (int fd : fds) {
    if (fd >= 0) pfds.push_back({fd, POLLIN, 0});
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int wait_ms = std::max<int>(0, static_cast<int>(left.count()));
    const int n = pfds.empty()
                      ? ::poll(nullptr, 0, wait_ms)  // pure pacing sleep
                      : ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                               wait_ms);
    if (n >= 0) return pfds.empty() ? 0 : n;
    if (errno != EINTR) return -1;  // hard poll error, distinct from timeout
    if (wait_ms == 0) return 0;     // interrupted with no budget left
  }
}

std::uint16_t listener_port(const Listener& listener) {
  const auto* tcp = dynamic_cast<const TcpListener*>(&listener);
  PERQ_REQUIRE(tcp != nullptr, "listener_port: not a TCP listener");
  return tcp->port();
}

}  // namespace perq::net
