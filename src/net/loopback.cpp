#include "net/loopback.hpp"

#include <deque>
#include <map>

#include "util/require.hpp"

namespace perq::net {

/// One queued message: either owned in place (send) or jointly owned with
/// every other recipient of the same broadcast (send_shared).
struct LoopbackItem {
  proto::Message msg;
  std::shared_ptr<const proto::Message> shared;

  const proto::Message& view() const { return shared ? *shared : msg; }
};

/// Shared state of one connection: a queue per direction plus open flags.
struct LoopbackQueue {
  std::mutex mu;
  std::deque<LoopbackItem> to_server;
  std::deque<LoopbackItem> to_client;
  bool server_open = true;
  bool client_open = true;
};

LoopbackConnection::LoopbackConnection(std::shared_ptr<LoopbackQueue> q,
                                       bool is_server)
    : q_(std::move(q)), is_server_(is_server) {}

LoopbackConnection::~LoopbackConnection() { close(); }

bool LoopbackConnection::send(const proto::Message& m) {
  std::lock_guard lock(q_->mu);
  if (!my_open() || !peer_open()) return false;
  (is_server_ ? q_->to_client : q_->to_server).push_back({m, nullptr});
  return true;
}

bool LoopbackConnection::send_shared(std::shared_ptr<const proto::Message> m) {
  if (m == nullptr) return false;
  std::lock_guard lock(q_->mu);
  if (!my_open() || !peer_open()) return false;
  (is_server_ ? q_->to_client : q_->to_server)
      .push_back({proto::Message{}, std::move(m)});
  return true;
}

std::vector<proto::Message> LoopbackConnection::receive() {
  std::lock_guard lock(q_->mu);
  auto& inbox = is_server_ ? q_->to_server : q_->to_client;
  std::vector<proto::Message> out;
  out.reserve(inbox.size());
  for (LoopbackItem& it : inbox) {
    out.push_back(it.shared ? *it.shared : std::move(it.msg));
  }
  inbox.clear();
  return out;
}

void LoopbackConnection::receive_into(std::vector<proto::Message>& out) {
  std::lock_guard lock(q_->mu);
  auto& inbox = is_server_ ? q_->to_server : q_->to_client;
  for (LoopbackItem& it : inbox) {
    out.push_back(it.shared ? *it.shared : std::move(it.msg));
  }
  inbox.clear();
}

void LoopbackConnection::drain(
    const std::function<void(const proto::Message&)>& f) {
  std::lock_guard lock(q_->mu);
  auto& inbox = is_server_ ? q_->to_server : q_->to_client;
  for (const LoopbackItem& it : inbox) f(it.view());
  inbox.clear();
}

bool LoopbackConnection::open() const {
  std::lock_guard lock(q_->mu);
  // Like a socket: stays readable-open until the inbox drains even if the
  // peer already closed, so no queued message is lost on shutdown.
  const auto& inbox = is_server_ ? q_->to_server : q_->to_client;
  return my_open() && (peer_open() || !inbox.empty());
}

void LoopbackConnection::close() {
  std::lock_guard lock(q_->mu);
  (is_server_ ? q_->server_open : q_->client_open) = false;
}

bool LoopbackConnection::my_open() const {
  return is_server_ ? q_->server_open : q_->client_open;
}

bool LoopbackConnection::peer_open() const {
  return is_server_ ? q_->client_open : q_->server_open;
}

namespace {

struct ListenerState {
  std::mutex mu;
  std::deque<std::unique_ptr<Connection>> pending;
  bool open = true;
};

}  // namespace

struct LoopbackTransport::Registry {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<ListenerState>> listeners;
};

namespace {

class LoopbackListener final : public Listener {
 public:
  explicit LoopbackListener(std::shared_ptr<ListenerState> state)
      : state_(std::move(state)) {}

  ~LoopbackListener() override { close(); }

  std::vector<std::unique_ptr<Connection>> accept_new() override {
    std::lock_guard lock(state_->mu);
    std::vector<std::unique_ptr<Connection>> out;
    while (!state_->pending.empty()) {
      out.push_back(std::move(state_->pending.front()));
      state_->pending.pop_front();
    }
    return out;
  }

  void close() override {
    std::lock_guard lock(state_->mu);
    state_->open = false;
    state_->pending.clear();
  }

 private:
  std::shared_ptr<ListenerState> state_;
};

}  // namespace

LoopbackTransport::LoopbackTransport() : registry_(std::make_shared<Registry>()) {}

LoopbackTransport::~LoopbackTransport() = default;

std::unique_ptr<Listener> LoopbackTransport::listen(const std::string& address) {
  std::lock_guard lock(registry_->mu);
  auto& slot = registry_->listeners[address];
  PERQ_REQUIRE(slot == nullptr || !slot->open,
               "loopback address already listening: " + address);
  slot = std::make_shared<ListenerState>();
  return std::make_unique<LoopbackListener>(slot);
}

std::unique_ptr<Connection> LoopbackTransport::connect(const std::string& address) {
  std::shared_ptr<ListenerState> state;
  {
    std::lock_guard lock(registry_->mu);
    const auto it = registry_->listeners.find(address);
    PERQ_REQUIRE(it != registry_->listeners.end() && it->second->open,
                 "no loopback listener at: " + address);
    state = it->second;
  }
  auto pair = std::make_shared<LoopbackQueue>();
  auto client = std::make_unique<LoopbackConnection>(pair, /*is_server=*/false);
  {
    std::lock_guard lock(state->mu);
    PERQ_REQUIRE(state->open, "loopback listener closed: " + address);
    state->pending.push_back(
        std::make_unique<LoopbackConnection>(std::move(pair), /*is_server=*/true));
  }
  return client;
}

}  // namespace perq::net
