#include "net/loopback.hpp"

#include <deque>
#include <map>

#include "util/require.hpp"

namespace perq::net {

namespace {

/// Shared state of one connection: a queue per direction plus open flags.
struct QueuePair {
  std::mutex mu;
  std::deque<proto::Message> to_server;
  std::deque<proto::Message> to_client;
  bool server_open = true;
  bool client_open = true;
};

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<QueuePair> q, bool is_server)
      : q_(std::move(q)), is_server_(is_server) {}

  ~LoopbackConnection() override { close(); }

  bool send(const proto::Message& m) override {
    std::lock_guard lock(q_->mu);
    if (!my_open() || !peer_open()) return false;
    (is_server_ ? q_->to_client : q_->to_server).push_back(m);
    return true;
  }

  std::vector<proto::Message> receive() override {
    std::lock_guard lock(q_->mu);
    auto& inbox = is_server_ ? q_->to_server : q_->to_client;
    std::vector<proto::Message> out(inbox.begin(), inbox.end());
    inbox.clear();
    return out;
  }

  bool open() const override {
    std::lock_guard lock(q_->mu);
    // Like a socket: stays readable-open until the inbox drains even if the
    // peer already closed, so no queued message is lost on shutdown.
    const auto& inbox = is_server_ ? q_->to_server : q_->to_client;
    return my_open() && (peer_open() || !inbox.empty());
  }

  void close() override {
    std::lock_guard lock(q_->mu);
    (is_server_ ? q_->server_open : q_->client_open) = false;
  }

 private:
  bool my_open() const { return is_server_ ? q_->server_open : q_->client_open; }
  bool peer_open() const { return is_server_ ? q_->client_open : q_->server_open; }

  std::shared_ptr<QueuePair> q_;
  bool is_server_;
};

struct ListenerState {
  std::mutex mu;
  std::deque<std::unique_ptr<Connection>> pending;
  bool open = true;
};

}  // namespace

struct LoopbackTransport::Registry {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<ListenerState>> listeners;
};

namespace {

class LoopbackListener final : public Listener {
 public:
  explicit LoopbackListener(std::shared_ptr<ListenerState> state)
      : state_(std::move(state)) {}

  ~LoopbackListener() override { close(); }

  std::vector<std::unique_ptr<Connection>> accept_new() override {
    std::lock_guard lock(state_->mu);
    std::vector<std::unique_ptr<Connection>> out;
    while (!state_->pending.empty()) {
      out.push_back(std::move(state_->pending.front()));
      state_->pending.pop_front();
    }
    return out;
  }

  void close() override {
    std::lock_guard lock(state_->mu);
    state_->open = false;
    state_->pending.clear();
  }

 private:
  std::shared_ptr<ListenerState> state_;
};

}  // namespace

LoopbackTransport::LoopbackTransport() : registry_(std::make_shared<Registry>()) {}

LoopbackTransport::~LoopbackTransport() = default;

std::unique_ptr<Listener> LoopbackTransport::listen(const std::string& address) {
  std::lock_guard lock(registry_->mu);
  auto& slot = registry_->listeners[address];
  PERQ_REQUIRE(slot == nullptr || !slot->open,
               "loopback address already listening: " + address);
  slot = std::make_shared<ListenerState>();
  return std::make_unique<LoopbackListener>(slot);
}

std::unique_ptr<Connection> LoopbackTransport::connect(const std::string& address) {
  std::shared_ptr<ListenerState> state;
  {
    std::lock_guard lock(registry_->mu);
    const auto it = registry_->listeners.find(address);
    PERQ_REQUIRE(it != registry_->listeners.end() && it->second->open,
                 "no loopback listener at: " + address);
    state = it->second;
  }
  auto pair = std::make_shared<QueuePair>();
  auto client = std::make_unique<LoopbackConnection>(pair, /*is_server=*/false);
  {
    std::lock_guard lock(state->mu);
    PERQ_REQUIRE(state->open, "loopback listener closed: " + address);
    state->pending.push_back(
        std::make_unique<LoopbackConnection>(std::move(pair), /*is_server=*/true));
  }
  return client;
}

}  // namespace perq::net
