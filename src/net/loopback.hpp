// In-process loopback transport: deterministic FIFO message queues.
//
// connect()/accept_new() pair endpoints through a named rendezvous inside
// one LoopbackTransport instance. Delivery is synchronous -- a message is
// visible to the peer's receive() immediately after send() -- so a
// single-threaded test can interleave controller and agents and observe the
// exact per-tick exchange order. A mutex guards the shared queues, so the
// transport also works when the controller runs on its own thread.
#pragma once

#include <memory>
#include <mutex>

#include "net/transport.hpp"

namespace perq::net {

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport();
  ~LoopbackTransport() override;

  std::unique_ptr<Listener> listen(const std::string& address) override;
  std::unique_ptr<Connection> connect(const std::string& address) override;

 private:
  struct Registry;
  std::shared_ptr<Registry> registry_;
};

}  // namespace perq::net
