// In-process loopback transport: deterministic FIFO message queues.
//
// connect()/accept_new() pair endpoints through a named rendezvous inside
// one LoopbackTransport instance. Delivery is synchronous -- a message is
// visible to the peer's receive() immediately after send() -- so a
// single-threaded test can interleave controller and agents and observe the
// exact per-tick exchange order. A mutex guards the shared queues, so the
// transport also works when the controller runs on its own thread.
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "net/transport.hpp"

namespace perq::net {

struct LoopbackQueue;

/// One endpoint of an in-process connection. Beyond the Connection
/// interface it offers two colocated-fleet fast paths that a socket cannot:
/// refcounted broadcast delivery (send_shared: one decoded message fanned
/// out to thousands of peers without a copy per connection) and in-place
/// receive (drain: the callback reads queued messages where they sit, so a
/// steady-state tick moves zero message bytes).
class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<LoopbackQueue> q, bool is_server);
  ~LoopbackConnection() override;

  bool send(const proto::Message& m) override;
  std::vector<proto::Message> receive() override;
  void receive_into(std::vector<proto::Message>& out) override;
  bool open() const override;
  void close() override;

  /// Queues a message owned jointly with the caller (and every other
  /// recipient of the same broadcast): delivery is a refcount bump, not a
  /// copy. FIFO order with send() is preserved. receive()/receive_into()
  /// still yield owned values (they copy shared messages out); drain() is
  /// the copy-free way to read them.
  bool send_shared(std::shared_ptr<const proto::Message> m);

  /// Calls `f` on every queued inbound message in FIFO order without
  /// copying or moving it, then clears the queue. The references are only
  /// valid inside the call.
  void drain(const std::function<void(const proto::Message&)>& f);

 private:
  bool my_open() const;
  bool peer_open() const;

  std::shared_ptr<LoopbackQueue> q_;
  bool is_server_;
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport();
  ~LoopbackTransport() override;

  std::unique_ptr<Listener> listen(const std::string& address) override;
  std::unique_ptr<Connection> connect(const std::string& address) override;

 private:
  struct Registry;
  std::shared_ptr<Registry> registry_;
};

}  // namespace perq::net
