// POSIX TCP transport: non-blocking sockets + poll(2)-based waiting.
//
// Address strings are "host:port" (IPv4 dotted quad or "localhost"); port 0
// on listen picks an ephemeral port, readable afterwards via
// TcpListener::port() -- tests depend on this to avoid fixed-port races.
//
// Every socket runs O_NONBLOCK. Writes that would block are buffered in the
// connection and flushed opportunistically on every send()/receive() call;
// reads drain until EAGAIN and feed the frame decoder. A read of 0 (peer
// EOF), any hard socket error, or a corrupt inbound stream closes the
// connection. wait_readable() is the event-loop primitive: it poll(2)s a set
// of descriptors so daemon loops block in the kernel instead of spinning.
#pragma once

#include <cstdint>

#include "net/transport.hpp"

namespace perq::net {

class TcpTransport final : public Transport {
 public:
  std::unique_ptr<Listener> listen(const std::string& address) override;
  std::unique_ptr<Connection> connect(const std::string& address) override;

  /// connect() with a bounded wait for the handshake (non-blocking connect
  /// + poll for writability). Returns nullptr on timeout or refusal.
  std::unique_ptr<Connection> connect_timeout(const std::string& address,
                                              int timeout_ms);
};

/// Blocks until one of `fds` is readable (or has an error/hangup pending),
/// at most `timeout_ms`. Negative descriptors are skipped. Returns the
/// number of ready descriptors, 0 on timeout, or -1 on a hard poll error --
/// never a negative ready count. EINTR is retried with the remaining
/// budget rather than reported as either outcome.
int wait_readable(const std::vector<int>& fds, int timeout_ms);

/// The ephemeral port a listener bound to (for "host:0" listens).
std::uint16_t listener_port(const Listener& listener);

}  // namespace perq::net
