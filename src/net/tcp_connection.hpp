// The TCP connection implementation behind TcpTransport.
//
// Exposed in a header (rather than hidden in tcp.cpp) so tests can derive
// from it and override write_bytes() to inject short writes: the
// partial-write resume logic in flush_writes()/advance_queue() is exactly
// the kind of code that only a deterministic short-write harness exercises
// reliably.
//
// Outbound queue model -- two tiers, strict FIFO:
//   1. sendbuf_   owned bytes (send() encodes into a reusable scratch and
//                 appends here), sent_ marks the written prefix.
//   2. shared_    SharedFrame segments queued by send_frame(): references
//                 to a broadcast buffer encoded once by the caller, never
//                 copied. Each segment resumes at its own offset.
// Invariant: all owned bytes precede all shared bytes. send() while shared
// segments are pending demotes them (copies the unsent tails into
// sendbuf_) to preserve FIFO; that only triggers for mixed send/send_frame
// traffic under backpressure, which the perqd protocol does not produce in
// steady state.
//
// flush_writes() issues one sendmsg(2) per loop covering the sendbuf_
// remainder plus up to kMaxIov shared segments, and advance_queue()
// consumes whatever the kernel accepted -- a short write leaves offsets
// mid-segment and the next flush resumes there.
#pragma once

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <vector>

#include "net/transport.hpp"

namespace perq::net {

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    const int one = 1;
    // Telemetry frames are tiny and latency-sensitive; never Nagle-delay.
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override { close(); }

  bool send(const proto::Message& m) override {
    if (fd_ < 0) return false;
    if (shared_head_ < shared_.size()) {
      flush_writes();
      demote_shared();
    }
    proto::encode_into(m, scratch_);
    sendbuf_.insert(sendbuf_.end(), scratch_.begin(), scratch_.end());
    flush_writes();
    return fd_ >= 0;
  }

  bool send_frame(const SharedFrame& f) override {
    if (fd_ < 0 || !f || f->size() < 4) return false;
    // Shared segments always queue after sendbuf_, so FIFO holds without
    // copying: the broadcast buffer is referenced, never duplicated.
    shared_.push_back({f, 0});
    flush_writes();
    return fd_ >= 0;
  }

  std::vector<proto::Message> receive() override {
    progress_reads();
    return decoder_.take();
  }

  void receive_into(std::vector<proto::Message>& out) override {
    progress_reads();
    decoder_.drain(out);
  }

  /// In-place receive: `f(proto::Message&)` per decoded message, nothing
  /// moved or copied. The decoder's message slots persist across ticks, so
  /// a connection whose per-tick frame mix is stable (the broadcast steady
  /// state) decodes with zero heap traffic -- including the dynamic plan
  /// bodies that receive_into() must surrender. References die with `f`.
  template <typename F>
  void consume_received(F&& f) {
    progress_reads();
    decoder_.consume(std::forward<F>(f));
  }

  void flush() override { flush_writes(); }

  bool open() const override { return fd_ >= 0; }

  bool corrupt() const override { return decoder_.corrupt(); }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd() const override { return fd_; }

  /// Bytes queued but not yet accepted by the kernel (owned + shared).
  std::size_t pending_bytes() const {
    std::size_t n = sendbuf_.size() - sent_;
    for (std::size_t i = shared_head_; i < shared_.size(); ++i) {
      n += shared_[i].frame->size() - shared_[i].off;
    }
    return n;
  }

 protected:
  /// Single write syscall; tests override to inject short writes. Must
  /// honor sendmsg(2) semantics (bytes accepted, or -1 with errno set).
  virtual ssize_t write_bytes(const struct msghdr* msg) {
    return ::sendmsg(fd_, msg, MSG_NOSIGNAL);
  }

  void flush_writes() {
    while (fd_ >= 0 && (sent_ < sendbuf_.size() || shared_head_ < shared_.size())) {
      struct iovec iov[kMaxIov];
      std::size_t iovcnt = 0;
      if (sent_ < sendbuf_.size()) {
        iov[iovcnt].iov_base = sendbuf_.data() + sent_;
        iov[iovcnt].iov_len = sendbuf_.size() - sent_;
        ++iovcnt;
      }
      for (std::size_t i = shared_head_; i < shared_.size() && iovcnt < kMaxIov;
           ++i) {
        const auto& f = *shared_[i].frame;
        iov[iovcnt].iov_base =
            const_cast<std::uint8_t*>(f.data()) + shared_[i].off;
        iov[iovcnt].iov_len = f.size() - shared_[i].off;
        ++iovcnt;
      }
      struct msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = iovcnt;
      const ssize_t n = write_bytes(&msg);
      if (n > 0) {
        advance_queue(static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      close();  // EPIPE/ECONNRESET/...
      return;
    }
  }

 private:
  struct Segment {
    SharedFrame frame;
    std::size_t off;  // bytes of *frame already written
  };

  void progress_reads() {
    if (fd_ < 0) return;
    flush_writes();
    std::uint8_t chunk[16384];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        decoder_.feed(chunk, static_cast<std::size_t>(n));
        if (decoder_.corrupt()) {
          close();  // unrecoverable framing: drop the peer
          return;
        }
        continue;
      }
      if (n == 0) {
        close();  // orderly peer shutdown
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close();  // hard error
      return;
    }
  }

  /// Copies unsent shared-segment bytes into sendbuf_ and drops the
  /// references, restoring the all-owned-before-all-shared invariant so a
  /// following send() can append.
  void demote_shared() {
    for (std::size_t i = shared_head_; i < shared_.size(); ++i) {
      const auto& f = *shared_[i].frame;
      sendbuf_.insert(sendbuf_.end(),
                      f.begin() + static_cast<std::ptrdiff_t>(shared_[i].off),
                      f.end());
    }
    shared_.clear();
    shared_head_ = 0;
  }

  void advance_queue(std::size_t n) {
    if (sent_ < sendbuf_.size()) {
      const std::size_t owned = std::min(n, sendbuf_.size() - sent_);
      sent_ += owned;
      n -= owned;
      if (sent_ == sendbuf_.size()) {
        sendbuf_.clear();  // capacity kept for the next tick
        sent_ = 0;
      }
    }
    while (n > 0 && shared_head_ < shared_.size()) {
      Segment& seg = shared_[shared_head_];
      const std::size_t left = seg.frame->size() - seg.off;
      const std::size_t used = std::min(n, left);
      seg.off += used;
      n -= used;
      if (seg.off == seg.frame->size()) {
        seg.frame.reset();  // release the pool's slot as early as possible
        ++shared_head_;
      }
    }
    if (shared_head_ == shared_.size()) {
      shared_.clear();  // capacity kept
      shared_head_ = 0;
    }
  }

  static constexpr std::size_t kMaxIov = 64;

  int fd_;
  std::vector<std::uint8_t> sendbuf_;
  std::size_t sent_ = 0;               // prefix of sendbuf_ already written
  std::vector<std::uint8_t> scratch_;  // reusable encode buffer
  std::vector<Segment> shared_;        // pending shared frames, FIFO
  std::size_t shared_head_ = 0;        // first not-fully-written segment
  proto::FrameDecoder decoder_;
};

}  // namespace perq::net
