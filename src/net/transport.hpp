// Message transport between the perqd controller and its node agents.
//
// Two implementations ship:
//   * LoopbackTransport (loopback.hpp) -- in-process queue pairs with
//     synchronous, deterministic delivery. The daemon equivalence tests run
//     on it so a daemon-mediated experiment is bit-for-bit comparable to the
//     in-process engine.
//   * TcpTransport (tcp.hpp) -- POSIX non-blocking sockets with a
//     poll(2)-based wait, for real controller/agent deployments.
//
// Connections speak whole proto::Message values; framing and the corrupt-
// stream policy (a malformed frame closes the connection) live below this
// interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/frame_pool.hpp"
#include "proto/message.hpp"

namespace perq::net {

/// One bidirectional message channel. All calls are non-blocking.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Queues one message for delivery. Returns false (and drops the message)
  /// when the connection is closed.
  virtual bool send(const proto::Message& m) = 0;

  /// Queues an already-encoded frame (serialize-once broadcast): the
  /// transport shares the buffer instead of re-encoding per connection.
  /// The default decodes and falls back to send() so in-process transports
  /// keep their message-level delivery semantics; the frame is a bit-exact
  /// wire image, so the round trip is lossless (doubles travel as raw
  /// IEEE-754 bits).
  virtual bool send_frame(const SharedFrame& f) {
    if (!f || f->size() < 4) return false;
    auto m = proto::parse_frame(f->data() + 4, f->size() - 4);
    return m.has_value() && send(*m);
  }

  /// Drains every message that has arrived since the last call. Progresses
  /// I/O as a side effect (flushes pending writes on socket transports).
  virtual std::vector<proto::Message> receive() = 0;

  /// Like receive(), but appends into a caller-owned vector so hot paths
  /// can reuse one scratch buffer per tick instead of materializing a
  /// fresh vector per call. Default adapts receive(); socket transports
  /// override with a genuinely allocation-free path.
  virtual void receive_into(std::vector<proto::Message>& out) {
    for (auto& m : receive()) out.push_back(std::move(m));
  }

  /// Progresses any pending outbound bytes without reading. No-op for
  /// transports with synchronous delivery.
  virtual void flush() {}

  /// True until the peer closes, an I/O error occurs, or the inbound stream
  /// turns out to be corrupt.
  virtual bool open() const = 0;

  /// True when the connection died because the inbound stream was corrupt
  /// (unparseable framing), as opposed to an orderly close or I/O error.
  /// Robustness accounting distinguishes the two.
  virtual bool corrupt() const { return false; }

  virtual void close() = 0;

  /// Pollable file descriptor, or -1 for in-process transports.
  virtual int fd() const { return -1; }
};

/// Server side of a transport: yields one Connection per connecting agent.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Accepts every connection currently pending (non-blocking).
  virtual std::vector<std::unique_ptr<Connection>> accept_new() = 0;

  virtual void close() = 0;

  /// Pollable listening descriptor, or -1 for in-process transports.
  virtual int fd() const { return -1; }
};

/// Factory tying the two sides together through an address string
/// ("host:port" for TCP, any name for loopback).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::unique_ptr<Listener> listen(const std::string& address) = 0;
  virtual std::unique_ptr<Connection> connect(const std::string& address) = 0;
};

}  // namespace perq::net
