#include "net/sharded_reactor.hpp"

#include <errno.h>
#include <poll.h>

#include <algorithm>
#include <chrono>

#include "util/require.hpp"

namespace perq::net {

namespace {

int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

}  // namespace

ShardedReactor::ShardedReactor(std::size_t shards, Reactor::Backend backend)
    : shards_(shards), backend_(backend) {
  PERQ_REQUIRE(shards_ >= 1, "need at least one reactor shard");
  // The poll backend has no nestable descriptor, so shards share one flat
  // reactor: wait cost is O(registered) regardless of sharding, and every
  // shard(s) accessor aliases the same instance.
  const std::size_t instances =
      backend_ == Reactor::Backend::kEpoll ? shards_ : 1;
  reactors_.reserve(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    reactors_.push_back(std::make_unique<Reactor>(backend_));
  }
}

std::size_t ShardedReactor::size() const {
  std::size_t n = 0;
  for (const auto& r : reactors_) n += r->size();
  return n;
}

int ShardedReactor::wait(int timeout_ms) {
  if (reactors_.size() == 1) {
    const int n = reactors_[0]->wait(timeout_ms);
    ready_ = reactors_[0]->ready();
    return n;
  }

  ready_.clear();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);

  // One pollfd per shard epoll descriptor: readable iff the shard has
  // pending events. S is small (<= a few dozen), so rebuilding this tiny
  // array per wait costs nothing next to the syscall.
  std::vector<pollfd> pfds;
  pfds.reserve(reactors_.size());
  bool any_registered = false;
  for (const auto& r : reactors_) {
    if (r->size() == 0) continue;  // empty epoll never becomes readable
    any_registered = true;
    pollfd p{};
    p.fd = r->pollable_fd();
    p.events = POLLIN;
    pfds.push_back(p);
  }
  if (!any_registered) {
    // Pacing sleep, same semantics (and EINTR handling) as Reactor::wait
    // with an empty interest set.
    while (timeout_ms > 0) {
      const int left = remaining_ms(deadline);
      if (left <= 0) break;
      if (::poll(nullptr, 0, left) >= 0) break;
      if (errno != EINTR) break;
    }
    return 0;
  }

  for (;;) {
    const int n =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), remaining_ms(deadline));
    if (n < 0) {
      if (errno == EINTR) continue;
      PERQ_ASSERT(false, "poll over shard reactors failed");
    }
    if (n == 0) return 0;  // timeout
    // Collect from every shard (wait(0) on a quiet shard is one cheap
    // syscall), not only the reported ones: level-triggered events that
    // arrive between the poll and the collect are picked up immediately.
    for (const auto& r : reactors_) {
      if (r->size() == 0) continue;
      r->wait(0);
      ready_.insert(ready_.end(), r->ready().begin(), r->ready().end());
    }
    if (!ready_.empty()) break;
    if (remaining_ms(deadline) <= 0) return 0;
    // Spurious (events consumed by a racing collector): wait again.
  }
  std::sort(ready_.begin(), ready_.end());
  return static_cast<int>(ready_.size());
}

}  // namespace perq::net
