// Sharded readiness reactor: S independent interest sets under one wait.
//
// The sharded data plane partitions connections by agent id into S shards,
// each drained by its own worker task. Readiness must shard the same way:
// a worker polling a shared interest set would either contend on one epoll
// or see other shards' fds. ShardedReactor keeps one inner Reactor per
// shard -- its own epoll set, registered once per connection -- and makes
// the *combined* wait cheap by exploiting that an epoll fd is itself
// pollable: wait() polls the S shard descriptors (S is small, one pollfd
// each) and then lets only the ready shards collect their events.
//
// Worker tasks never call wait(); they call shard(s).wait(0) -- a
// non-blocking collect on their own reactor -- or simply drain their
// sessions directly. The combined wait exists for the single-threaded
// service loops (perqd's pacing wait), which need "anything ready
// anywhere, or timeout".
//
// On the kPoll backend readiness is a flat poll(2) either way, so the
// shards share one inner reactor and the shard argument only routes
// bookkeeping -- semantics (including ready() order) are identical.
//
// Determinism: like Reactor, ready() is sorted ascending by fd, and
// nothing about shard structure reaches the caller's processing order.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/reactor.hpp"

namespace perq::net {

class ShardedReactor {
 public:
  explicit ShardedReactor(std::size_t shards,
                          Reactor::Backend backend = Reactor::default_backend());

  std::size_t shards() const { return shards_; }
  Reactor::Backend backend() const { return backend_; }

  /// The shard's own reactor (kEpoll: a distinct instance per shard;
  /// kPoll: every index aliases the single flat reactor).
  Reactor& shard(std::size_t s) { return *reactors_[index(s)]; }

  /// Registers `fd` for readability in shard `s`. Ignored when fd < 0 or
  /// already registered (same idiom as Reactor::add).
  void add(int fd, std::size_t s) { shard(s).add(fd); }

  /// Deregisters `fd` from shard `s`. The caller owns the fd -> shard
  /// mapping; removing from the wrong shard is a silent no-op, exactly as
  /// removing an unregistered fd is.
  void remove(int fd, std::size_t s) { shard(s).remove(fd); }

  /// Blocks up to `timeout_ms` for readability anywhere; returns the ready
  /// count (0 on timeout) and fills ready() with the union of the ready
  /// shards' fds, sorted ascending. EINTR is retried against the deadline.
  /// Empty interest sets degrade to a pacing sleep, like Reactor::wait.
  int wait(int timeout_ms);

  /// Fds readable at the last wait(), sorted ascending.
  const std::vector<int>& ready() const { return ready_; }

  /// Total registered fds across all shards.
  std::size_t size() const;

 private:
  std::size_t index(std::size_t s) const {
    return reactors_.size() == 1 ? 0 : s % shards_;
  }

  std::size_t shards_;
  Reactor::Backend backend_;
  /// kEpoll: one reactor per shard. kPoll: a single shared flat reactor.
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::vector<int> ready_;
};

}  // namespace perq::net
