// End-to-end identification pipeline: excitation experiment -> normalization
// -> ARX least squares -> state-space realization -> validation.
//
// Mirrors the paper's methodology (Sec. 2.4.2): run training benchmarks while
// switching the power-cap at random over a uniform distribution, record
// (cap, IPS) pairs, and identify one 3rd-order model for the node type. The
// model is deliberately trained on a benchmark suite disjoint from the
// evaluation applications (train/test split claim of the paper).
#pragma once

#include <cstdint>
#include <functional>

#include "sysid/statespace.hpp"

namespace perq::sysid {

/// A plant to excite: advances one control interval under the given
/// power-cap and returns the measured output (IPS).
using Plant = std::function<double(double cap_watts)>;

/// Excitation experiment parameters.
struct ExcitationConfig {
  double cap_min = 90.0;      ///< lowest power-cap applied (W)
  double cap_max = 290.0;     ///< highest power-cap applied (W; TDP)
  std::size_t samples = 3000; ///< total control intervals recorded
  std::size_t hold_min = 2;   ///< min intervals a random cap is held
  std::size_t hold_max = 8;   ///< max intervals a random cap is held
  std::uint64_t seed = 1;     ///< RNG seed for the cap schedule
};

/// Recorded input/output sequences from an excitation run.
struct ExcitationData {
  linalg::Vector u;  ///< applied power-caps
  linalg::Vector y;  ///< measured outputs (IPS)
};

/// Runs the random cap-switching experiment against `plant`.
ExcitationData collect_excitation(const Plant& plant, const ExcitationConfig& cfg);

/// Identified node model plus normalization and quality metadata.
class IdentifiedModel {
 public:
  IdentifiedModel(ArxModel arx, double u_mean, double u_scale, double y_scale,
                  double fit);

  const ArxModel& arx() const { return arx_; }
  const StateSpaceModel& ss() const { return ss_; }

  /// Operating-point cap the model is centered on (mean training cap).
  double u_mean() const { return u_mean_; }
  /// Input normalization divisor (applied to centered caps).
  double u_scale() const { return u_scale_; }
  /// Average training-application output scale (mean IPS of a training
  /// benchmark); model outputs are relative deviations from this mean.
  double y_scale() const { return y_scale_; }
  /// One-step NRMSE fit percentage on held-out validation data.
  double fit_percent() const { return fit_; }

  /// Normalizes a raw power-cap to centered model units.
  double normalize_u(double cap) const { return (cap - u_mean_) / u_scale_; }

  /// Predicted steady-state raw output at a constant raw cap, at the
  /// "average training application" scale: y_scale * (1 + dc * u_norm).
  double steady_state(double cap) const;

 private:
  ArxModel arx_;
  StateSpaceModel ss_;
  double u_mean_;
  double u_scale_;
  double y_scale_;
  double fit_;
};

/// Identifies an order-(na, nb) model from excitation data. The first half
/// of the data is used for estimation, the second half for the reported
/// validation fit. Throws perq::invariant_error when the identified model
/// is unstable (a re-run with a different excitation seed is the remedy).
IdentifiedModel identify(const ExcitationData& data, std::size_t na = 3,
                         std::size_t nb = 3);

/// Identifies one model from several independent excitation records (one per
/// training benchmark). Each segment's output is normalized by its own mean
/// before fitting -- training benchmarks have wildly different absolute IPS
/// scales, and PERQ's controller re-scales per job online anyway -- and no
/// regression row straddles a segment boundary. Each segment's first half is
/// used for estimation and its second half for the validation fit, so every
/// benchmark appears in both splits. The returned y_scale is the mean of the
/// segment means (the "average training application" scale).
IdentifiedModel identify_segments(const std::vector<ExcitationData>& segments,
                                  std::size_t na = 3, std::size_t nb = 3);

}  // namespace perq::sysid
