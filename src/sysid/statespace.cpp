#include "sysid/statespace.hpp"

#include <cmath>

#include "linalg/decompose.hpp"
#include "util/require.hpp"

namespace perq::sysid {

using linalg::Matrix;
using linalg::Vector;
using linalg::operator+;
using linalg::operator-;
using linalg::operator*;

StateSpaceModel StateSpaceModel::from_arx(const ArxModel& m) {
  const std::size_t n = m.order();
  PERQ_REQUIRE(n >= 1, "ARX model must have order >= 1");
  Matrix a(n, n), b(n, 1), c(1, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ai = i < m.na() ? m.a[i] : 0.0;
    a(i, 0) = ai;
    if (i + 1 < n) a(i, i + 1) = 1.0;
    // Splitting off the feedthrough b0 turns the numerator into
    // b_i + b0 * a_i for the strictly-proper part.
    b(i, 0) = (i < m.nb() ? m.b[i] : 0.0) + m.b0 * ai;
  }
  c(0, 0) = 1.0;
  return StateSpaceModel(std::move(a), std::move(b), std::move(c), m.b0);
}

StateSpaceModel::StateSpaceModel(Matrix a, Matrix b, Matrix c, double d)
    : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)), d_(d) {
  PERQ_REQUIRE(a_.is_square(), "A must be square");
  PERQ_REQUIRE(b_.rows() == a_.rows() && b_.cols() == 1, "B must be n x 1");
  PERQ_REQUIRE(c_.rows() == 1 && c_.cols() == a_.rows(), "C must be 1 x n");
}

double StateSpaceModel::output(const Vector& x, double u) const {
  PERQ_REQUIRE(x.size() == order(), "state size mismatch");
  double y = d_ * u;
  for (std::size_t i = 0; i < x.size(); ++i) y += c_(0, i) * x[i];
  return y;
}

Vector StateSpaceModel::step(const Vector& x, double u) const {
  PERQ_REQUIRE(x.size() == order(), "state size mismatch");
  Vector next = a_ * x;
  for (std::size_t i = 0; i < next.size(); ++i) next[i] += b_(i, 0) * u;
  return next;
}

Vector StateSpaceModel::simulate(const Vector& x0, const Vector& u) const {
  Vector x = x0;
  Vector y(u.size());
  for (std::size_t k = 0; k < u.size(); ++k) {
    y[k] = output(x, u[k]);
    x = step(x, u[k]);
  }
  return y;
}

double StateSpaceModel::dc_gain() const {
  const Matrix m = Matrix::identity(order()) - a_;
  const Vector rhs = b_.col(0);
  const Vector x = linalg::Lu(m).solve(rhs);
  double g = d_;
  for (std::size_t i = 0; i < x.size(); ++i) g += c_(0, i) * x[i];
  return g;
}

bool StateSpaceModel::is_stable() const {
  // Spectral radius via norm growth: rho(A) = lim ||A^k||^(1/k).
  Matrix p = a_;
  int k = 1;
  for (int doubling = 0; doubling < 6; ++doubling) {  // A^64
    p = p * p;
    k *= 2;
    const double norm = p.frobenius_norm();
    if (norm == 0.0) return true;            // nilpotent
    if (norm > 1e100) return false;          // clearly divergent
  }
  return std::pow(p.frobenius_norm(), 1.0 / k) < 1.0 - 1e-9;
}

Vector StateSpaceModel::state_from_history(const Vector& u, const Vector& y) const {
  const std::size_t n = order();
  const std::size_t m = u.size();
  PERQ_REQUIRE(u.size() == y.size(), "u/y history length mismatch");
  PERQ_REQUIRE(m >= n, "history shorter than model order");

  // Forced response contribution at each step, computed by simulating the
  // input from zero state; the residual y - y_forced is the free response
  // O x0, solved by least squares over the observability matrix O.
  const Vector y_forced = simulate(Vector(n, 0.0), u);
  Vector residual(m);
  for (std::size_t j = 0; j < m; ++j) residual[j] = y[j] - y_forced[j];

  Matrix obs(m, n);
  Matrix ak = Matrix::identity(n);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double v = 0.0;
      for (std::size_t l = 0; l < n; ++l) v += c_(0, l) * ak(l, i);
      obs(j, i) = v;
    }
    ak = a_ * ak;
  }
  const Vector x0 = linalg::least_squares(obs, residual);

  // Roll forward: x(k) = A^m x0 + forced-state response.
  Vector x = x0;
  for (std::size_t j = 0; j < m; ++j) x = step(x, u[j]);
  return x;
}

}  // namespace perq::sysid
