#include "sysid/arx.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/decompose.hpp"
#include "util/require.hpp"

namespace perq::sysid {

double ArxModel::predict(double u_now, const linalg::Vector& y_hist,
                         const linalg::Vector& u_hist) const {
  PERQ_REQUIRE(y_hist.size() >= na(), "y history shorter than model order");
  PERQ_REQUIRE(u_hist.size() >= nb(), "u history shorter than model order");
  double y = b0 * u_now;
  for (std::size_t i = 0; i < na(); ++i) y += a[i] * y_hist[i];
  for (std::size_t i = 0; i < nb(); ++i) y += b[i] * u_hist[i];
  return y;
}

linalg::Vector ArxModel::simulate(const linalg::Vector& u,
                                  const linalg::Vector& y0) const {
  const std::size_t n = order();
  PERQ_REQUIRE(y0.empty() || y0.size() >= na(), "seed shorter than model order");
  linalg::Vector y(u.size(), 0.0);
  // Histories kept most-recent-first.
  linalg::Vector yh(na(), 0.0);
  linalg::Vector uh(nb(), 0.0);
  if (!y0.empty()) {
    // y0 is oldest-first; its last element is y(k-1).
    for (std::size_t i = 0; i < na(); ++i) yh[i] = y0[y0.size() - 1 - i];
  }
  (void)n;
  for (std::size_t k = 0; k < u.size(); ++k) {
    y[k] = predict(u[k], yh, uh);
    // Shift histories.
    for (std::size_t i = yh.size(); i-- > 1;) yh[i] = yh[i - 1];
    if (!yh.empty()) yh[0] = y[k];
    for (std::size_t i = uh.size(); i-- > 1;) uh[i] = uh[i - 1];
    if (!uh.empty()) uh[0] = u[k];
  }
  return y;
}

double ArxModel::dc_gain() const {
  double sa = 0.0;
  for (double x : a) sa += x;
  double sb = b0;
  for (double x : b) sb += x;
  PERQ_REQUIRE(std::abs(1.0 - sa) > 1e-9, "dc gain undefined: pole at z = 1");
  return sb / (1.0 - sa);
}

bool ArxModel::is_stable() const {
  // Characteristic polynomial z^na - a1 z^{na-1} - ... - a_na, tested with
  // the Schur-Cohn recursion: stable iff |c_n| < |c_0| at every reduction.
  std::vector<double> c;
  c.push_back(1.0);
  for (double x : a) c.push_back(-x);
  while (c.size() > 1) {
    const double c0 = c.front();
    const double cn = c.back();
    if (std::abs(cn) >= std::abs(c0) - 1e-12) return false;
    std::vector<double> d(c.size() - 1);
    for (std::size_t i = 0; i + 1 < c.size(); ++i) {
      d[i] = c0 * c[i] - cn * c[c.size() - 1 - i];
    }
    c = std::move(d);
  }
  return true;
}

ArxModel fit_arx(const linalg::Vector& u, const linalg::Vector& y, std::size_t na,
                 std::size_t nb) {
  PERQ_REQUIRE(u.size() == y.size(), "u and y must be the same length");
  PERQ_REQUIRE(na >= 1 && nb >= 1, "model orders must be >= 1");
  const std::size_t n = std::max(na, nb);
  PERQ_REQUIRE(y.size() > n + na + nb, "not enough data for the requested order");

  const std::size_t rows = y.size() - n;
  linalg::Matrix phi(rows, na + 1 + nb);
  linalg::Vector target(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t k = r + n;  // predict y(k)
    for (std::size_t i = 0; i < na; ++i) phi(r, i) = y[k - 1 - i];
    phi(r, na) = u[k];
    for (std::size_t i = 0; i < nb; ++i) phi(r, na + 1 + i) = u[k - 1 - i];
    target[r] = y[k];
  }
  const linalg::Vector theta =
      linalg::ridge_least_squares(phi, target, 1e-8 * static_cast<double>(phi.rows()));
  ArxModel m;
  m.a.assign(theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(na));
  m.b0 = theta[na];
  m.b.assign(theta.begin() + static_cast<std::ptrdiff_t>(na) + 1, theta.end());
  return m;
}

double nrmse_fit(const linalg::Vector& y, const linalg::Vector& y_hat) {
  PERQ_REQUIRE(y.size() == y_hat.size() && !y.empty(), "fit size mismatch");
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double err = 0.0;
  double dev = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    err += (y[i] - y_hat[i]) * (y[i] - y_hat[i]);
    dev += (y[i] - mean) * (y[i] - mean);
  }
  if (dev == 0.0) return err == 0.0 ? 100.0 : 0.0;
  return 100.0 * (1.0 - std::sqrt(err / dev));
}

}  // namespace perq::sysid
