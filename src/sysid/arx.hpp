// ARX (AutoRegressive with eXogenous input) model identification.
//
// PERQ's system model (paper Sec. 2.4.2) maps recent node power-caps to the
// node's IPS. The paper identifies a 3rd-order state-space model with
// MATLAB's System Identification Toolbox; we identify the equivalent ARX(3,3)
// difference equation by linear least squares,
//
//   y(k) = a1 y(k-1) + ... + a_na y(k-na)
//        + b0 u(k) + b1 u(k-1) + ... + b_nb u(k-nb) + e(k),
//
// including a direct-feedthrough term b0: at a 10 s control interval the
// IPS measured during interval k already reflects the cap applied at the
// start of interval k (RAPL actuates within milliseconds-to-seconds), so a
// strictly-proper model would be structurally wrong at this sampling rate.
//
// and realize it as a state-space model in statespace.hpp. The two are
// equivalent SISO LTI descriptions; least-squares ARX is the textbook
// identification method for this family (Ljung, "System Identification").
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace perq::sysid {

/// Identified ARX difference-equation model.
struct ArxModel {
  linalg::Vector a;  ///< output coefficients a1..a_na (most recent first)
  linalg::Vector b;  ///< lagged input coefficients b1..b_nb (most recent first)
  double b0 = 0.0;   ///< direct feedthrough coefficient on u(k)

  std::size_t na() const { return a.size(); }
  std::size_t nb() const { return b.size(); }
  std::size_t order() const { return std::max(na(), nb()); }

  /// One-step prediction of y(k) given the current input u(k) and histories
  /// ordered most-recent-first: y_hist[0] = y(k-1), u_hist[0] = u(k-1).
  double predict(double u_now, const linalg::Vector& y_hist,
                 const linalg::Vector& u_hist) const;

  /// Free-run simulation: feeds its own predictions back. `u` is the input
  /// sequence; the first `order()` outputs are seeded from `y0` (oldest
  /// first) when provided, else zeros.
  linalg::Vector simulate(const linalg::Vector& u, const linalg::Vector& y0 = {}) const;

  /// Steady-state output per unit constant input:
  /// (b0 + sum(b)) / (1 - sum(a)).
  /// Requires the model to be stable (denominator positive check enforced).
  double dc_gain() const;

  /// True when all characteristic roots lie strictly inside the unit circle
  /// (Jury stability criterion).
  bool is_stable() const;
};

/// Fits an ARX(na, nb) model to input/output data by least squares.
/// `u` and `y` are aligned sequences of the same length (>= order + 1
/// usable rows required). Throws perq::precondition_error on bad shapes and
/// perq::invariant_error when the regression is rank deficient (input not
/// persistently exciting).
ArxModel fit_arx(const linalg::Vector& u, const linalg::Vector& y, std::size_t na,
                 std::size_t nb);

/// MATLAB-style NRMSE fit percentage: 100 * (1 - ||y-yhat|| / ||y-mean(y)||).
/// 100 = perfect; <= 0 = no better than predicting the mean.
double nrmse_fit(const linalg::Vector& y, const linalg::Vector& y_hat);

}  // namespace perq::sysid
