// Model analysis: the control-theoretic checks behind the paper's claims.
//
// Sec. 2.4.2 states that "MATLAB's system identification tool is used to
// develop a *controllable* state-space model"; this module provides the
// corresponding checks for our identified models -- poles, stability
// margin, controllability/observability (matrix-rank and Gramian forms) --
// plus model-order selection to justify the paper's choice of order 3.
#pragma once

#include <complex>
#include <vector>

#include "sysid/identify.hpp"

namespace perq::sysid {

/// Poles of the model (eigenvalues of A).
std::vector<std::complex<double>> poles(const StateSpaceModel& ss);

/// 1 - spectral_radius(A): positive for stable models; the larger, the
/// faster disturbances decay.
double stability_margin(const StateSpaceModel& ss);

/// Controllability matrix [B, AB, ..., A^{n-1}B] (n x n for SISO).
linalg::Matrix controllability_matrix(const StateSpaceModel& ss);

/// Observability matrix [C; CA; ...; CA^{n-1}] (n x n for SISO).
linalg::Matrix observability_matrix(const StateSpaceModel& ss);

/// True when the controllability matrix has full rank: every internal state
/// can be steered by the power-cap input.
bool is_controllable(const StateSpaceModel& ss, double tol = 1e-9);

/// True when the observability matrix has full rank: the internal state can
/// be reconstructed from IPS measurements.
bool is_observable(const StateSpaceModel& ss, double tol = 1e-9);

/// Controllability Gramian W_c solving  W_c = A W_c A' + B B'  (requires a
/// stable model). Its smallest eigenvalue measures how hard the least
/// controllable direction is to reach.
linalg::Matrix controllability_gramian(const StateSpaceModel& ss);

/// Observability Gramian W_o solving  W_o = A' W_o A + C' C.
linalg::Matrix observability_gramian(const StateSpaceModel& ss);

/// One candidate model order's scorecard.
struct OrderCandidate {
  std::size_t order = 0;
  double fit_percent = 0.0;  ///< held-out one-step NRMSE fit
  double aic = 0.0;          ///< Akaike information criterion (lower = better)
  bool stable = false;
};

/// Fits models of order 1..max_order on the segments and scores each on the
/// held-out halves; used to justify the paper's fixed order of 3.
std::vector<OrderCandidate> sweep_model_order(
    const std::vector<ExcitationData>& segments, std::size_t max_order = 6);

/// The order with the best AIC among stable candidates.
std::size_t select_model_order(const std::vector<OrderCandidate>& candidates);

}  // namespace perq::sysid
