#include "sysid/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/eigen.hpp"
#include "util/require.hpp"

namespace perq::sysid {

using linalg::Matrix;

std::vector<std::complex<double>> poles(const StateSpaceModel& ss) {
  return linalg::eigenvalues(ss.A());
}

double stability_margin(const StateSpaceModel& ss) {
  return 1.0 - linalg::spectral_radius(ss.A());
}

Matrix controllability_matrix(const StateSpaceModel& ss) {
  const std::size_t n = ss.order();
  Matrix ctrb(n, n);
  linalg::Vector col = ss.B().col(0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) ctrb(i, j) = col[i];
    col = ss.A() * col;
  }
  return ctrb;
}

Matrix observability_matrix(const StateSpaceModel& ss) {
  const std::size_t n = ss.order();
  Matrix obsv(n, n);
  Matrix row = ss.C();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) obsv(i, j) = row(0, j);
    row = row * ss.A();
  }
  return obsv;
}

namespace {

bool full_rank(const Matrix& m, double tol) {
  // Rank via the PSD Gramian M'M: robust and reuses the Jacobi eigensolver.
  return linalg::psd_rank(m.transposed() * m, tol * tol) == m.rows();
}

}  // namespace

bool is_controllable(const StateSpaceModel& ss, double tol) {
  return full_rank(controllability_matrix(ss), tol);
}

bool is_observable(const StateSpaceModel& ss, double tol) {
  return full_rank(observability_matrix(ss), tol);
}

Matrix controllability_gramian(const StateSpaceModel& ss) {
  return linalg::solve_discrete_lyapunov(ss.A(), ss.B() * ss.B().transposed());
}

Matrix observability_gramian(const StateSpaceModel& ss) {
  return linalg::solve_discrete_lyapunov(ss.A().transposed(),
                                         ss.C().transposed() * ss.C());
}

std::vector<OrderCandidate> sweep_model_order(
    const std::vector<ExcitationData>& segments, std::size_t max_order) {
  PERQ_REQUIRE(max_order >= 1, "max_order must be >= 1");
  // Validation sample count (second half of every segment, minus warm-up).
  std::vector<OrderCandidate> out;
  for (std::size_t order = 1; order <= max_order; ++order) {
    OrderCandidate c;
    c.order = order;
    try {
      const auto model = identify_segments(segments, order, order);
      c.fit_percent = model.fit_percent();
      c.stable = model.arx().is_stable();
      // AIC up to an order-independent constant: the validation NRMSE fit
      // gives SSE/SST = (1 - fit/100)^2 and SST does not depend on the
      // order, so AIC differences reduce to N ln(SSE/N) + 2k with the SST
      // factor cancelling.
      double n_val = 0.0;
      for (const auto& seg : segments) {
        n_val += static_cast<double>(seg.u.size() - seg.u.size() / 2);
      }
      const double rel = std::max(1e-9, 1.0 - c.fit_percent / 100.0);
      const double params = static_cast<double>(2 * order + 1);  // a, b, b0
      c.aic = n_val * std::log(rel * rel) + 2.0 * params;
    } catch (const invariant_error&) {
      // Unstable fit at this order: report it as an invalid candidate.
      c.stable = false;
      c.fit_percent = 0.0;
      c.aic = std::numeric_limits<double>::infinity();
    }
    out.push_back(c);
  }
  return out;
}

std::size_t select_model_order(const std::vector<OrderCandidate>& candidates) {
  PERQ_REQUIRE(!candidates.empty(), "no order candidates");
  std::size_t best_order = 0;
  double best_aic = std::numeric_limits<double>::infinity();
  for (const auto& c : candidates) {
    if (c.stable && c.aic < best_aic) {
      best_aic = c.aic;
      best_order = c.order;
    }
  }
  PERQ_REQUIRE(best_order > 0, "no stable model order found");
  return best_order;
}

}  // namespace perq::sysid
