// Discrete-time state-space realization of the identified ARX model.
//
// This is the model of paper Fig. 5:
//
//   X(k+1) = A X(k) + B P(k)     (+ V W(k), disturbance handled by the
//   Y(k)   = C X(k) + D P(k)      offset-free estimator in perq::control)
//
// realized in observable canonical form so that the state can be
// reconstructed exactly from a window of past inputs/outputs -- which is how
// the PERQ controller re-anchors the model to each running job's observed
// behavior every decision interval.
#pragma once

#include "linalg/matrix.hpp"
#include "sysid/arx.hpp"

namespace perq::sysid {

/// SISO discrete-time LTI state-space model with scalar feedthrough D.
class StateSpaceModel {
 public:
  /// Builds the observable-canonical realization of an ARX model (with its
  /// feedthrough b0 mapped to D and the numerator adjusted accordingly).
  static StateSpaceModel from_arx(const ArxModel& m);

  /// Direct construction (shapes validated: A n x n, B n x 1, C 1 x n).
  StateSpaceModel(linalg::Matrix a, linalg::Matrix b, linalg::Matrix c,
                  double d = 0.0);

  std::size_t order() const { return a_.rows(); }
  const linalg::Matrix& A() const { return a_; }
  const linalg::Matrix& B() const { return b_; }
  const linalg::Matrix& C() const { return c_; }
  double D() const { return d_; }

  /// Output y(k) = C x + D u.
  double output(const linalg::Vector& x, double u) const;

  /// State update x(k+1) = A x + B u.
  linalg::Vector step(const linalg::Vector& x, double u) const;

  /// Free-run simulation from initial state x0 over input sequence u;
  /// returns the output sequence (y(k) emitted before applying u(k)).
  linalg::Vector simulate(const linalg::Vector& x0, const linalg::Vector& u) const;

  /// Steady-state output per unit constant input: C (I - A)^{-1} B + D.
  double dc_gain() const;

  /// True when the spectral radius of A is < 1 (power iteration estimate).
  bool is_stable() const;

  /// Reconstructs the current state x(k) from the most recent `window`
  /// input/output samples (oldest first: u[0] applied at the window start).
  /// Uses least squares on the observability map, then rolls forward; exact
  /// for noise-free data when window >= order(). Requires
  /// u.size() == y.size() >= order().
  linalg::Vector state_from_history(const linalg::Vector& u,
                                    const linalg::Vector& y) const;

 private:
  linalg::Matrix a_, b_, c_;
  double d_ = 0.0;
};

}  // namespace perq::sysid
