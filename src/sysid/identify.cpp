#include "sysid/identify.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/decompose.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace perq::sysid {

ExcitationData collect_excitation(const Plant& plant, const ExcitationConfig& cfg) {
  PERQ_REQUIRE(static_cast<bool>(plant), "plant callback must be set");
  PERQ_REQUIRE(cfg.cap_min < cfg.cap_max, "cap range empty");
  PERQ_REQUIRE(cfg.hold_min >= 1 && cfg.hold_min <= cfg.hold_max, "bad hold range");
  PERQ_REQUIRE(cfg.samples >= 16, "too few samples for identification");

  Rng rng(cfg.seed);
  ExcitationData data;
  data.u.reserve(cfg.samples);
  data.y.reserve(cfg.samples);
  while (data.u.size() < cfg.samples) {
    // Uniform random cap, held for a random number of intervals -- the
    // paper's "switching the power-cap frequently using a uniform
    // distribution" protocol.
    const double cap = rng.uniform(cfg.cap_min, cfg.cap_max);
    const auto hold = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(cfg.hold_min),
                        static_cast<std::int64_t>(cfg.hold_max)));
    for (std::size_t h = 0; h < hold && data.u.size() < cfg.samples; ++h) {
      data.u.push_back(cap);
      data.y.push_back(plant(cap));
    }
  }
  return data;
}

IdentifiedModel::IdentifiedModel(ArxModel arx, double u_mean, double u_scale,
                                 double y_scale, double fit)
    : arx_(std::move(arx)),
      ss_(StateSpaceModel::from_arx(arx_)),
      u_mean_(u_mean),
      u_scale_(u_scale),
      y_scale_(y_scale),
      fit_(fit) {
  PERQ_REQUIRE(u_scale_ > 0.0 && y_scale_ > 0.0, "scales must be positive");
}

double IdentifiedModel::steady_state(double cap) const {
  return y_scale_ * (1.0 + arx_.dc_gain() * normalize_u(cap));
}

IdentifiedModel identify(const ExcitationData& data, std::size_t na, std::size_t nb) {
  return identify_segments({data}, na, nb);
}

namespace {

/// Appends the ARX regression rows of one normalized segment to (phi, target)
/// row lists, restricted to [from, to).
void append_regression_rows(const linalg::Vector& u, const linalg::Vector& y,
                            std::size_t na, std::size_t nb, std::size_t from,
                            std::size_t to, std::vector<linalg::Vector>& phi_rows,
                            linalg::Vector& targets) {
  const std::size_t order = std::max(na, nb);
  for (std::size_t k = std::max(from, order); k < to; ++k) {
    linalg::Vector row(na + 1 + nb);
    for (std::size_t i = 0; i < na; ++i) row[i] = y[k - 1 - i];
    row[na] = u[k];  // direct feedthrough regressor
    for (std::size_t i = 0; i < nb; ++i) row[na + 1 + i] = u[k - 1 - i];
    phi_rows.push_back(std::move(row));
    targets.push_back(y[k]);
  }
}

}  // namespace

IdentifiedModel identify_segments(const std::vector<ExcitationData>& segments,
                                  std::size_t na, std::size_t nb) {
  PERQ_REQUIRE(!segments.empty(), "need at least one excitation segment");
  PERQ_REQUIRE(na >= 1 && nb >= 1, "model orders must be >= 1");
  const std::size_t order = std::max(na, nb);

  // Mean removal (as MATLAB's sysid does before fitting): without an
  // intercept term, non-centered data forces the AR part toward a unit root
  // just to reproduce the operating point. Inputs are centered on the global
  // mean cap; each segment's output becomes its relative deviation from the
  // segment mean (training benchmarks differ in absolute IPS by orders of
  // magnitude).
  double u_mean = 0.0;
  std::size_t u_count = 0;
  for (const auto& seg : segments) {
    PERQ_REQUIRE(seg.u.size() == seg.y.size(), "u/y length mismatch");
    PERQ_REQUIRE(seg.u.size() >= 8 * order + 16, "segment too short");
    for (double v : seg.u) u_mean += v;
    u_count += seg.u.size();
  }
  u_mean /= static_cast<double>(u_count);

  double u_scale = 0.0;
  double y_scale_sum = 0.0;
  std::vector<linalg::Vector> un(segments.size()), yn(segments.size());
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const auto& seg = segments[s];
    for (double v : seg.u) u_scale = std::max(u_scale, std::abs(v - u_mean));
    double y_mean = 0.0;
    for (double v : seg.y) y_mean += v;
    y_mean /= static_cast<double>(seg.y.size());
    PERQ_REQUIRE(y_mean > 0.0, "segment output mean must be positive");
    y_scale_sum += y_mean;
    yn[s].resize(seg.y.size());
    for (std::size_t i = 0; i < seg.y.size(); ++i) {
      yn[s][i] = (seg.y[i] - y_mean) / y_mean;
    }
    un[s] = seg.u;  // centered and scaled below once u_scale is known
  }
  PERQ_REQUIRE(u_scale > 0.0, "excitation input is constant");
  const double y_scale = y_scale_sum / static_cast<double>(segments.size());
  for (auto& u : un) {
    for (double& v : u) v = (v - u_mean) / u_scale;
  }

  // Estimation rows: first half of every segment.
  std::vector<linalg::Vector> phi_rows;
  linalg::Vector targets;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    append_regression_rows(un[s], yn[s], na, nb, 0, un[s].size() / 2, phi_rows,
                           targets);
  }
  PERQ_REQUIRE(phi_rows.size() > 4 * (na + 1 + nb), "not enough estimation data");
  linalg::Matrix phi(phi_rows.size(), na + 1 + nb);
  for (std::size_t r = 0; r < phi_rows.size(); ++r) {
    for (std::size_t c = 0; c < na + 1 + nb; ++c) phi(r, c) = phi_rows[r][c];
  }
  // Small ridge: noise-free or over-parameterized records are otherwise
  // exactly rank deficient; the bias at this magnitude is negligible.
  const linalg::Vector theta =
      linalg::ridge_least_squares(phi, targets, 1e-8 * static_cast<double>(phi.rows()));
  ArxModel arx;
  arx.a.assign(theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(na));
  arx.b0 = theta[na];
  arx.b.assign(theta.begin() + static_cast<std::ptrdiff_t>(na) + 1, theta.end());
  PERQ_ASSERT(arx.is_stable(),
              "identified model is unstable; re-run excitation with another seed");

  // Validation: one-step prediction fit over the second half of each segment.
  linalg::Vector y_true, y_pred;
  linalg::Vector yh(na), uh(nb);
  for (std::size_t s = 0; s < segments.size(); ++s) {
    for (std::size_t k = un[s].size() / 2 + order; k < un[s].size(); ++k) {
      for (std::size_t i = 0; i < na; ++i) yh[i] = yn[s][k - 1 - i];
      for (std::size_t i = 0; i < nb; ++i) uh[i] = un[s][k - 1 - i];
      y_true.push_back(yn[s][k]);
      y_pred.push_back(arx.predict(un[s][k], yh, uh));
    }
  }
  const double fit = nrmse_fit(y_true, y_pred);
  return IdentifiedModel(std::move(arx), u_mean, u_scale, y_scale, fit);
}

}  // namespace perq::sysid
