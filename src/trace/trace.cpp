#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>

#include "apps/catalog.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace perq::trace {

namespace {

constexpr double kHalfHourS = 1800.0;

double lognormal_mean(double mu, double sigma) {
  return std::exp(mu + 0.5 * sigma * sigma);
}

}  // namespace

double normal_survival(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

std::string to_string(SystemModel m) {
  switch (m) {
    case SystemModel::kMira: return "mira";
    case SystemModel::kTrinity: return "trinity";
    case SystemModel::kTardis: return "tardis";
  }
  return "unknown";
}

RuntimeDistribution RuntimeDistribution::for_system(SystemModel m) {
  RuntimeDistribution d;
  double target_mean = 0.0;
  double target_frac = 0.0;  // P(runtime > 30 min)
  switch (m) {
    case SystemModel::kMira:
      // Mira: mean 72 min, 62% of jobs > 30 min (paper Sec. 2.1).
      d.mu1_ = std::log(900.0);
      d.sigma1_ = 0.8;
      d.mu2_ = std::log(3000.0);
      d.sigma2_ = 1.0;
      target_mean = 72.0 * 60.0;
      target_frac = 0.62;
      break;
    case SystemModel::kTrinity:
      // Trinity: mean 30 min, 46% of jobs > 30 min. The published moments
      // imply the bulk of the mass sits near 30 min (median ~ mean), so the
      // dominant component is a moderate-sigma lognormal centered there,
      // plus a short-job component.
      d.mu1_ = std::log(300.0);
      d.sigma1_ = 0.7;
      d.mu2_ = std::log(1900.0);
      d.sigma2_ = 0.5;
      target_mean = 30.0 * 60.0;
      target_frac = 0.46;
      break;
    case SystemModel::kTardis:
      // 16-node prototype cluster: benchmark jobs of tens of minutes (the
      // paper notes prototype runs "last for hours on the full cluster";
      // it gives no distribution, so these targets are our choice).
      d.mu1_ = std::log(350.0);
      d.sigma1_ = 0.45;
      d.mu2_ = std::log(2200.0);
      d.sigma2_ = 0.4;
      d.max_runtime_s_ = 10800.0;
      target_mean = 25.0 * 60.0;
      target_frac = 0.32;
      break;
  }

  // Calibrate (scale, weight1) against the published moments. Along the
  // mean constraint the scale is a closed-form function of the weight, so a
  // fine grid search over the weight plus a local refinement pins the tail
  // fraction. (Direct 2-D iteration is fragile here: the tail is not
  // monotone along the mean-constraint curve.)
  const double m1 = lognormal_mean(d.mu1_, d.sigma1_);
  const double m2 = lognormal_mean(d.mu2_, d.sigma2_);
  const auto scale_for = [&](double w) { return target_mean / (w * m1 + (1.0 - w) * m2); };
  double best_w = 0.5;
  double best_err = 1e9;
  for (int pass = 0; pass < 3; ++pass) {
    const double span = pass == 0 ? 0.5 : best_err < 1e9 ? 0.02 / (pass * 8.0) : 0.5;
    const double center = pass == 0 ? 0.5 : best_w;
    for (int g = 0; g <= 1024; ++g) {
      const double w =
          std::clamp(center - span + 2.0 * span * g / 1024.0, 0.0, 1.0);
      d.weight1_ = w;
      d.scale_ = scale_for(w);
      const double err = std::abs(d.fraction_above(kHalfHourS) - target_frac);
      if (err < best_err) {
        best_err = err;
        best_w = w;
      }
    }
  }
  d.weight1_ = best_w;
  d.scale_ = scale_for(best_w);
  PERQ_ASSERT(std::abs(d.mean() - target_mean) < 0.05 * target_mean,
              "runtime calibration failed on the mean");
  PERQ_ASSERT(std::abs(d.fraction_above(kHalfHourS) - target_frac) < 0.03,
              "runtime calibration failed on the tail fraction");
  return d;
}

double RuntimeDistribution::sample(Rng& rng) const {
  const bool short_job = rng.bernoulli(weight1_);
  const double raw = short_job ? rng.lognormal(mu1_, sigma1_)
                               : rng.lognormal(mu2_, sigma2_);
  return std::clamp(raw * scale_, min_runtime_s_, max_runtime_s_);
}

double RuntimeDistribution::mean() const {
  return scale_ * (weight1_ * lognormal_mean(mu1_, sigma1_) +
                   (1.0 - weight1_) * lognormal_mean(mu2_, sigma2_));
}

double RuntimeDistribution::fraction_above(double t) const {
  PERQ_REQUIRE(t > 0.0, "threshold must be positive");
  const double lt = std::log(t / scale_);
  return weight1_ * normal_survival((lt - mu1_) / sigma1_) +
         (1.0 - weight1_) * normal_survival((lt - mu2_) / sigma2_);
}

namespace {

/// Mira allocates power-of-two partitions; small jobs dominate. Returns a
/// power-of-two node count <= max_nodes.
std::size_t sample_mira_nodes(Rng& rng, std::size_t max_nodes) {
  std::vector<double> weights;
  std::size_t size = 1;
  // Geometric-ish decay over power-of-two sizes.
  double w = 1.0;
  while (size <= max_nodes) {
    weights.push_back(w);
    w *= 0.62;
    size *= 2;
  }
  return std::size_t{1} << rng.weighted_index(weights);
}

/// Trinity allows arbitrary node counts: lognormal, rounded, clipped.
std::size_t sample_trinity_nodes(Rng& rng, std::size_t max_nodes) {
  const double raw = rng.lognormal(std::log(3.0), 1.1);
  const auto n = static_cast<std::size_t>(std::llround(std::max(1.0, raw)));
  return std::min(n, max_nodes);
}

std::size_t sample_tardis_nodes(Rng& rng, std::size_t max_nodes) {
  return static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(std::min<std::size_t>(4, max_nodes))));
}

}  // namespace

std::vector<JobSpec> generate_trace(const TraceConfig& cfg) {
  PERQ_REQUIRE(cfg.job_count >= 1, "trace must contain at least one job");
  PERQ_REQUIRE(cfg.max_job_nodes >= 1, "max_job_nodes must be >= 1");
  PERQ_REQUIRE(cfg.estimate_pad_median >= 0.0, "estimate pad must be >= 0");
  PERQ_REQUIRE(cfg.estimate_pad_sigma >= 0.0, "estimate sigma must be >= 0");
  PERQ_REQUIRE(cfg.estimate_pad_max >= 1.0, "estimate pad cap must be >= 1");
  PERQ_REQUIRE(cfg.arrival_span_s >= 0.0, "arrival span must be >= 0");
  const auto runtime = RuntimeDistribution::for_system(cfg.system);
  const auto& catalog = apps::ecp_catalog();
  Rng rng(cfg.seed);
  // Secondary stream for estimates / arrivals / users: the primary stream
  // above must emit exactly the draws it always has (see TraceConfig note).
  Rng aux(cfg.seed ^ 0x5eed0e57a11c0de5ull);

  std::vector<double> user_weights;
  if (cfg.user_count > 1) {
    user_weights.reserve(cfg.user_count);
    for (std::size_t u = 0; u < cfg.user_count; ++u) {
      user_weights.push_back(1.0 / static_cast<double>(u + 1));
    }
  }
  const double arrival_rate =
      cfg.arrival_span_s > 0.0
          ? static_cast<double>(cfg.job_count) / cfg.arrival_span_s
          : 0.0;

  std::vector<JobSpec> jobs;
  jobs.reserve(cfg.job_count);
  double arrival_t = 0.0;
  for (std::size_t i = 0; i < cfg.job_count; ++i) {
    JobSpec j;
    j.id = static_cast<int>(i);
    switch (cfg.system) {
      case SystemModel::kMira: j.nodes = sample_mira_nodes(rng, cfg.max_job_nodes); break;
      case SystemModel::kTrinity:
        j.nodes = sample_trinity_nodes(rng, cfg.max_job_nodes);
        break;
      case SystemModel::kTardis:
        j.nodes = sample_tardis_nodes(rng, cfg.max_job_nodes);
        break;
    }
    j.runtime_ref_s = runtime.sample(rng);
    // Uniform application assignment over the ten ECP apps (paper Sec. 3).
    j.app_index = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(catalog.size()) - 1));
    j.phase_offset_s = rng.uniform(0.0, 1200.0);

    if (cfg.estimate_pad_median > 0.0) {
      // Pad factor >= 1 (users over-request), rounded up to 5-minute
      // granularity: estimates cluster on round walltimes.
      const double pad =
          std::clamp(cfg.estimate_pad_median *
                         aux.lognormal(0.0, cfg.estimate_pad_sigma),
                     1.0, cfg.estimate_pad_max);
      constexpr double kGranule = 300.0;
      j.walltime_est_s =
          std::ceil(j.runtime_ref_s * pad / kGranule) * kGranule;
    }
    if (arrival_rate > 0.0) {
      arrival_t += aux.exponential(arrival_rate);
      j.submit_time_s = arrival_t;
    }
    if (cfg.user_count > 1) {
      j.user_id = static_cast<std::uint32_t>(aux.weighted_index(user_weights));
    }
    jobs.push_back(j);
  }
  return jobs;
}

TraceStats compute_stats(const std::vector<JobSpec>& jobs) {
  PERQ_REQUIRE(!jobs.empty(), "empty trace");
  std::vector<double> runtimes;
  runtimes.reserve(jobs.size());
  double node_sum = 0.0;
  std::size_t max_nodes = 0;
  for (const auto& j : jobs) {
    runtimes.push_back(j.runtime_ref_s);
    node_sum += static_cast<double>(j.nodes);
    max_nodes = std::max(max_nodes, j.nodes);
  }
  TraceStats s;
  s.mean_runtime_s = mean(runtimes);
  s.median_runtime_s = median(runtimes);
  s.fraction_over_30min = fraction_above(runtimes, kHalfHourS);
  s.mean_nodes = node_sum / static_cast<double>(jobs.size());
  s.max_nodes = max_nodes;
  return s;
}

}  // namespace perq::trace
