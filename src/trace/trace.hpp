// Synthetic job-trace generation matched to the published Mira / Trinity
// workload statistics.
//
// The paper drives its simulation with job traces from ALCF Mira and LANL
// Trinity (runtime and node-count distributions; Fig. 1 shows the runtime
// CDFs; Sec. 2.1 gives the moments: Mira mean runtime 72 min with 62% of
// jobs > 30 min, Trinity mean 30 min with 46% > 30 min). The raw traces are
// not available here, so we synthesize jobs from a two-component lognormal
// mixture calibrated *exactly* to those published moments, with node-count
// distributions shaped per machine (Mira allocates power-of-two partitions;
// Trinity allows arbitrary sizes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace perq::trace {

/// One job of a workload trace. Runtime is the *reference* runtime: the
/// job's duration when every one of its nodes runs at TDP.
struct JobSpec {
  int id = 0;
  std::size_t nodes = 1;        ///< nodes the job spans
  double runtime_ref_s = 0.0;   ///< runtime at full power (seconds)
  std::size_t app_index = 0;    ///< index into apps::ecp_catalog()
  double phase_offset_s = 0.0;  ///< random offset into the app's phase cycle
};

/// Which machine's published statistics to match.
enum class SystemModel { kMira, kTrinity, kTardis };

std::string to_string(SystemModel m);

/// Two-component lognormal runtime mixture, calibrated at construction so
/// that mean(runtime) and P(runtime > threshold) hit the published targets.
class RuntimeDistribution {
 public:
  /// Component shapes (mu_i, sigma_i) are fixed per machine; `scale` and
  /// `weight` are solved numerically against the targets.
  static RuntimeDistribution for_system(SystemModel m);

  double sample(Rng& rng) const;

  /// Analytic mean of the calibrated mixture.
  double mean() const;

  /// Analytic P(runtime > t).
  double fraction_above(double t) const;

  double min_runtime_s() const { return min_runtime_s_; }
  double max_runtime_s() const { return max_runtime_s_; }

 private:
  RuntimeDistribution() = default;

  double mu1_ = 0.0, sigma1_ = 1.0;
  double mu2_ = 0.0, sigma2_ = 1.0;
  double weight1_ = 0.5;        ///< mass of component 1 (the short jobs)
  double scale_ = 1.0;          ///< global multiplicative calibration
  double min_runtime_s_ = 60.0;
  double max_runtime_s_ = 86400.0;
};

/// Trace generation parameters.
struct TraceConfig {
  SystemModel system = SystemModel::kMira;
  std::size_t job_count = 2000;   ///< jobs to synthesize (backlog kept full)
  std::size_t max_job_nodes = 32; ///< cap on a single job's node count
  std::uint64_t seed = 1;
};

/// Generates `cfg.job_count` jobs. Application assignment is uniform over
/// the ten ECP proxy apps (paper Sec. 3 methodology).
std::vector<JobSpec> generate_trace(const TraceConfig& cfg);

/// Summary statistics of a trace (for validation and the Fig. 1 bench).
struct TraceStats {
  double mean_runtime_s = 0.0;
  double median_runtime_s = 0.0;
  double fraction_over_30min = 0.0;
  double mean_nodes = 0.0;
  std::size_t max_nodes = 0;
};

TraceStats compute_stats(const std::vector<JobSpec>& jobs);

/// Standard normal survival function Q(z) = P(Z > z) (exposed for tests).
double normal_survival(double z);

}  // namespace perq::trace
