// Synthetic job-trace generation matched to the published Mira / Trinity
// workload statistics.
//
// The paper drives its simulation with job traces from ALCF Mira and LANL
// Trinity (runtime and node-count distributions; Fig. 1 shows the runtime
// CDFs; Sec. 2.1 gives the moments: Mira mean runtime 72 min with 62% of
// jobs > 30 min, Trinity mean 30 min with 46% > 30 min). The raw traces are
// not available here, so we synthesize jobs from a two-component lognormal
// mixture calibrated *exactly* to those published moments, with node-count
// distributions shaped per machine (Mira allocates power-of-two partitions;
// Trinity allows arbitrary sizes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace perq::trace {

/// One job of a workload trace. Runtime is the *reference* runtime: the
/// job's duration when every one of its nodes runs at TDP.
struct JobSpec {
  int id = 0;
  std::size_t nodes = 1;        ///< nodes the job spans
  double runtime_ref_s = 0.0;   ///< runtime at full power (seconds)
  std::size_t app_index = 0;    ///< index into apps::ecp_catalog()
  double phase_offset_s = 0.0;  ///< random offset into the app's phase cycle
  /// User-supplied walltime estimate (seconds). Real schedulers never see
  /// the true runtime: users request padded, round-number walltimes, and
  /// EASY backfill reserves off those estimates. 0 = no estimate (consumers
  /// fall back to runtime_ref_s, the oracle behavior of older traces).
  double walltime_est_s = 0.0;
  /// Submission time (seconds into the experiment). 0 = available at start,
  /// which reproduces the pre-arrival-model "full backlog" population.
  double submit_time_s = 0.0;
  std::uint32_t user_id = 0;    ///< submitting user (accounting association)
};

/// Which machine's published statistics to match.
enum class SystemModel { kMira, kTrinity, kTardis };

std::string to_string(SystemModel m);

/// Two-component lognormal runtime mixture, calibrated at construction so
/// that mean(runtime) and P(runtime > threshold) hit the published targets.
class RuntimeDistribution {
 public:
  /// Component shapes (mu_i, sigma_i) are fixed per machine; `scale` and
  /// `weight` are solved numerically against the targets.
  static RuntimeDistribution for_system(SystemModel m);

  double sample(Rng& rng) const;

  /// Analytic mean of the calibrated mixture.
  double mean() const;

  /// Analytic P(runtime > t).
  double fraction_above(double t) const;

  double min_runtime_s() const { return min_runtime_s_; }
  double max_runtime_s() const { return max_runtime_s_; }

 private:
  RuntimeDistribution() = default;

  double mu1_ = 0.0, sigma1_ = 1.0;
  double mu2_ = 0.0, sigma2_ = 1.0;
  double weight1_ = 0.5;        ///< mass of component 1 (the short jobs)
  double scale_ = 1.0;          ///< global multiplicative calibration
  double min_runtime_s_ = 60.0;
  double max_runtime_s_ = 86400.0;
};

/// Trace generation parameters.
///
/// The estimate / arrival / user fields draw from a *secondary* RNG stream
/// derived from `seed`, so enabling them (or tuning their knobs) never
/// perturbs the primary stream that samples node counts and runtimes: a
/// trace's (nodes, runtime, app, phase) sequence is bit-identical to the
/// pre-estimate generator for every seed.
struct TraceConfig {
  SystemModel system = SystemModel::kMira;
  std::size_t job_count = 2000;   ///< jobs to synthesize (backlog kept full)
  std::size_t max_job_nodes = 32; ///< cap on a single job's node count
  std::uint64_t seed = 1;
  /// Walltime-estimate synthesis: users pad the true runtime by a lognormal
  /// factor (median `estimate_pad_median`, shape `estimate_pad_sigma`),
  /// clamped to [1, estimate_pad_max] x runtime and rounded *up* to 5-minute
  /// granularity -- the round-number inflation real traces show. Median 1
  /// with sigma 0 yields exact (oracle) estimates; estimate_pad_median = 0
  /// disables synthesis entirely (walltime_est_s stays 0).
  double estimate_pad_median = 1.6;
  double estimate_pad_sigma = 0.45;
  double estimate_pad_max = 10.0;
  /// Arrival model: when > 0, submit times are a Poisson process over
  /// [0, arrival_span_s] (exponential gaps, sorted by construction). 0 keeps
  /// every job available at t = 0.
  double arrival_span_s = 0.0;
  /// Submitting-user population: users sampled Zipf-style (rank-weight
  /// 1/(rank+1)) over `user_count` users. <= 1 assigns everyone user 0.
  std::size_t user_count = 1;
};

/// Generates `cfg.job_count` jobs. Application assignment is uniform over
/// the ten ECP proxy apps (paper Sec. 3 methodology).
std::vector<JobSpec> generate_trace(const TraceConfig& cfg);

/// Summary statistics of a trace (for validation and the Fig. 1 bench).
struct TraceStats {
  double mean_runtime_s = 0.0;
  double median_runtime_s = 0.0;
  double fraction_over_30min = 0.0;
  double mean_nodes = 0.0;
  std::size_t max_nodes = 0;
};

TraceStats compute_stats(const std::vector<JobSpec>& jobs);

/// Standard normal survival function Q(z) = P(Z > z) (exposed for tests).
double normal_survival(double z);

}  // namespace perq::trace
