#include "util/backoff.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace perq {

Backoff::Backoff(const BackoffConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  PERQ_REQUIRE(cfg_.initial_delay > 0.0, "backoff initial delay must be positive");
  PERQ_REQUIRE(cfg_.multiplier >= 1.0, "backoff multiplier must be >= 1");
  PERQ_REQUIRE(cfg_.max_delay >= cfg_.initial_delay,
               "backoff max delay below initial delay");
  PERQ_REQUIRE(cfg_.jitter >= 0.0 && cfg_.jitter < 1.0,
               "backoff jitter must be in [0, 1)");
}

bool Backoff::exhausted() const {
  return cfg_.max_attempts > 0 && attempts_ >= cfg_.max_attempts;
}

bool Backoff::ready(double now) const {
  if (exhausted()) return false;
  return !armed_ || now >= next_try_;
}

void Backoff::record_failure(double now) {
  double delay = cfg_.initial_delay;
  for (std::size_t i = 0; i < attempts_ && delay < cfg_.max_delay; ++i) {
    delay *= cfg_.multiplier;
  }
  delay = std::min(delay, cfg_.max_delay);
  if (cfg_.jitter > 0.0) {
    delay *= 1.0 + cfg_.jitter * rng_.uniform(-1.0, 1.0);
  }
  ++attempts_;
  next_try_ = now + delay;
  armed_ = true;
}

void Backoff::reset() {
  attempts_ = 0;
  next_try_ = 0.0;
  armed_ = false;
}

}  // namespace perq
