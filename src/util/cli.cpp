#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/require.hpp"

namespace perq::cli {

namespace {

[[noreturn]] void fail(const std::string& flag, const std::string& text,
                       const std::string& why) {
  throw precondition_error(flag + ": " + why + ": '" + text + "'");
}

}  // namespace

double parse_double(const std::string& flag, const std::string& text) {
  if (text.empty()) fail(flag, text, "expected a number");
  // strtod accepts leading whitespace, hex floats, and inf/nan; a strict
  // flag value is plain decimal, so screen the first character ourselves.
  const char c0 = text.front();
  if (!(c0 == '+' || c0 == '-' || c0 == '.' || (c0 >= '0' && c0 <= '9'))) {
    fail(flag, text, "expected a number");
  }
  if (text.find('x') != std::string::npos || text.find('X') != std::string::npos) {
    fail(flag, text, "expected a decimal number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) fail(flag, text, "trailing garbage");
  if (errno == ERANGE || !std::isfinite(v)) fail(flag, text, "out of range");
  return v;
}

double parse_double_in(const std::string& flag, const std::string& text,
                       double lo, double hi) {
  PERQ_REQUIRE(lo <= hi, "malformed range");
  const double v = parse_double(flag, text);
  if (v < lo || v > hi) {
    fail(flag, text,
         "must be in [" + std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text) {
  if (text.empty()) fail(flag, text, "expected a non-negative integer");
  for (char c : text) {
    if (c < '0' || c > '9') fail(flag, text, "expected a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) fail(flag, text, "trailing garbage");
  if (errno == ERANGE || v > std::numeric_limits<std::uint64_t>::max()) {
    fail(flag, text, "out of range");
  }
  return static_cast<std::uint64_t>(v);
}

std::uint64_t parse_u64_in(const std::string& flag, const std::string& text,
                           std::uint64_t lo, std::uint64_t hi) {
  PERQ_REQUIRE(lo <= hi, "malformed range");
  const std::uint64_t v = parse_u64(flag, text);
  if (v < lo || v > hi) {
    fail(flag, text,
         "must be in [" + std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

}  // namespace perq::cli
