// Wall-clock stopwatch used for the controller-overhead measurements
// (paper Fig. 13) and general harness timing.
#pragma once

#include <chrono>

namespace perq {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts timing from now.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace perq
