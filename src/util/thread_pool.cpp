#include "util/thread_pool.hpp"

#include <algorithm>

namespace perq {

namespace {
// Set while a pool worker is executing a task. parallel_for uses it to run
// nested invocations inline: a worker that blocked on sub-tasks queued behind
// other blocking tasks would deadlock the pool.
thread_local bool t_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    t_in_pool_worker = true;
    task();
    t_in_pool_worker = false;
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t blocks =
      t_in_pool_worker
          ? 1  // nested call from a worker: run inline, never block the pool
          : std::min({size(), count, grain > 0 ? (count + grain - 1) / grain
                                               : count});
  if (blocks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  const std::size_t chunk = (count + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace perq
