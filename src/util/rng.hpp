// Deterministic pseudo-random number generation for PERQ simulations.
//
// All stochastic components (trace synthesis, measurement noise, phase
// scheduling) draw from perq::Rng so that every experiment is reproducible
// from a single seed. The generator is xoshiro256**, seeded via splitmix64,
// which is the standard fast/high-quality combination for simulation work.
#pragma once

#include <cstdint>
#include <vector>

namespace perq {

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies std::uniform_random_bit_generator so it can also be used with
/// <random> distributions, but the built-in helpers are preferred in PERQ
/// code because their output is stable across standard-library versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via splitmix64 so that nearby seeds give uncorrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Lognormal: exp(N(mu, sigma)). Parameters are of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (rate > 0).
  double exponential(double rate);

  /// Bernoulli trial with probability p in [0, 1].
  bool bernoulli(double p);

  /// Index sampled proportionally to `weights` (all >= 0, sum > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child stream (for per-node / per-job noise).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace perq
