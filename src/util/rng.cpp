#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace perq {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa => uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PERQ_REQUIRE(lo <= hi, "uniform bounds out of order");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PERQ_REQUIRE(lo <= hi, "uniform_int bounds out of order");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit span
  // Rejection sampling avoids modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  PERQ_REQUIRE(sigma >= 0.0, "sigma must be non-negative");
  return mean + sigma * normal();
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double rate) {
  PERQ_REQUIRE(rate > 0.0, "rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) {
  PERQ_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  PERQ_REQUIRE(!weights.empty(), "weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    PERQ_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  PERQ_REQUIRE(total > 0.0, "weights must not all be zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

Rng Rng::split() {
  // A fresh stream seeded from this one; xoshiro outputs are well mixed so
  // a single draw is a sound child seed.
  return Rng((*this)());
}

}  // namespace perq
