// Tiny CSV emitter used by benchmark harnesses to dump figure series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace perq {

/// Writes rows of doubles/strings as RFC-4180-ish CSV. Values containing
/// commas or quotes are quoted. The file is flushed on destruction.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws perq::precondition_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; must have the same arity as the header.
  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

  /// Number of data rows written so far.
  std::size_t rows_written() const { return rows_; }

  /// Pushes buffered rows to disk and verifies the stream is still healthy.
  /// Throws perq::precondition_error when the write failed (disk full,
  /// deleted directory, ...) -- callers that script long sweeps should flush
  /// at checkpoints instead of discovering a torn file afterwards.
  void flush();

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Formats a double compactly (up to 10 significant digits, no trailing
/// zeros) for CSV / console output.
std::string format_double(double v);

}  // namespace perq
