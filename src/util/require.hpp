// Lightweight precondition / invariant checking used across all PERQ modules.
//
// Following the C++ Core Guidelines (I.6/E.12), preconditions are checked at
// API boundaries and violations throw std::invalid_argument /
// std::logic_error so callers can test failure paths deterministically.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace perq {

/// Thrown when a caller violates a documented precondition.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (indicates a PERQ bug).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg,
                                            const std::source_location& loc) {
  throw precondition_error(std::string(loc.file_name()) + ":" +
                           std::to_string(loc.line()) + ": precondition `" + expr +
                           "` failed" + (msg.empty() ? "" : ": " + msg));
}

[[noreturn]] inline void throw_invariant(const char* expr, const std::string& msg,
                                         const std::source_location& loc) {
  throw invariant_error(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                        ": invariant `" + expr + "` failed" +
                        (msg.empty() ? "" : ": " + msg));
}

}  // namespace detail

/// Checks a caller-facing precondition; throws perq::precondition_error.
#define PERQ_REQUIRE(expr, msg)                                                       \
  do {                                                                                \
    if (!(expr)) {                                                                    \
      ::perq::detail::throw_precondition(#expr, (msg), std::source_location::current()); \
    }                                                                                 \
  } while (false)

/// Checks an internal invariant; throws perq::invariant_error.
#define PERQ_ASSERT(expr, msg)                                                     \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::perq::detail::throw_invariant(#expr, (msg), std::source_location::current()); \
    }                                                                              \
  } while (false)

}  // namespace perq
