// Minimal fixed-size worker pool for the embarrassingly parallel layers:
// per-job free-response computation inside MpcController::decide and the
// independent run_experiment invocations in the bench/example harnesses.
//
// Design constraints (why not std::async): deterministic results require the
// work decomposition to be index-addressed -- parallel_for hands each index
// to exactly one worker and each task writes only its own output slot, so the
// result is bit-for-bit identical to a serial loop regardless of scheduling.
// The pool is lazily created and reused (thread churn per control tick would
// dwarf the work at small job counts).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace perq {

class ThreadPool {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Tasks must not
  /// block on other tasks submitted to the same pool (no nesting).
  template <class Fn>
  auto submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs body(i) for i in [begin, end), partitioned into contiguous blocks
  /// across the pool, and waits for completion. Each index is executed
  /// exactly once; when every body(i) writes only to slot i of its output,
  /// the result is identical to the serial loop. Falls back to a plain loop
  /// for tiny ranges where task overhead would dominate, and when called
  /// from inside a pool worker (nested parallelism runs inline -- the outer
  /// level already owns the cores, and blocking a worker on queued sub-tasks
  /// could deadlock the pool).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide shared pool (created on first use).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace perq
