// Descriptive statistics and empirical CDF helpers used by the trace
// generators, the metrics module, and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace perq {

/// Arithmetic mean. Requires a non-empty sample.
double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for a single sample.
double variance(const std::vector<double>& xs);

/// Unbiased sample standard deviation.
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, q in [0, 100]. Requires non-empty sample.
double percentile(std::vector<double> xs, double q);

/// Median (50th percentile).
double median(const std::vector<double>& xs);

/// Largest element. Requires non-empty sample.
double max_of(const std::vector<double>& xs);

/// Smallest element. Requires non-empty sample.
double min_of(const std::vector<double>& xs);

/// Fraction of samples strictly greater than `threshold`.
double fraction_above(const std::vector<double>& xs, double threshold);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;       ///< sample value (x axis)
  double cumulative = 0.0;  ///< fraction of samples <= value (y axis)
};

/// Full empirical CDF (one point per sample, sorted ascending).
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

/// Empirical CDF downsampled to `points` evenly spaced quantiles,
/// suitable for printing a figure-sized series.
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs, std::size_t points);

/// Running (streaming) mean/min/max/count accumulator.
class RunningStats {
 public:
  void add(double x);
  /// Number of samples seen so far.
  std::size_t count() const { return n_; }
  /// Mean of samples; requires count() > 0.
  double mean() const;
  double min() const;
  double max() const;
  /// Sample variance (n-1); 0 when count() < 2.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace perq
