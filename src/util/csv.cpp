#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

#include "util/require.hpp"

namespace perq {

namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), arity_(header.size()) {
  PERQ_REQUIRE(out_.is_open(), "cannot open CSV file: " + path);
  PERQ_REQUIRE(!header.empty(), "CSV header must be non-empty");
  write_cells(header);
}

void CsvWriter::row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v));
  row(cells);
}

void CsvWriter::row(const std::vector<std::string>& values) {
  PERQ_REQUIRE(values.size() == arity_, "CSV row arity mismatch");
  write_cells(values);
  ++rows_;
}

void CsvWriter::flush() {
  out_.flush();
  PERQ_REQUIRE(out_.good(), "CSV write failed (stream went bad on flush)");
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (needs_quoting(cells[i]) ? quote(cells[i]) : cells[i]);
  }
  out_ << '\n';
}

}  // namespace perq
