#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace perq {

double mean(const std::vector<double>& xs) {
  PERQ_REQUIRE(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  PERQ_REQUIRE(!xs.empty(), "variance of empty sample");
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double q) {
  PERQ_REQUIRE(!xs.empty(), "percentile of empty sample");
  PERQ_REQUIRE(q >= 0.0 && q <= 100.0, "percentile out of [0,100]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(const std::vector<double>& xs) { return percentile(xs, 50.0); }

double max_of(const std::vector<double>& xs) {
  PERQ_REQUIRE(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

double min_of(const std::vector<double>& xs) {
  PERQ_REQUIRE(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double fraction_above(const std::vector<double>& xs, double threshold) {
  PERQ_REQUIRE(!xs.empty(), "fraction_above of empty sample");
  std::size_t n = 0;
  for (double x : xs) {
    if (x > threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  PERQ_REQUIRE(!xs.empty(), "cdf of empty sample");
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  const auto n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back({xs[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs, std::size_t points) {
  PERQ_REQUIRE(points >= 2, "need at least two CDF points");
  auto full = empirical_cdf(std::move(xs));
  if (full.size() <= points) return full;
  std::vector<CdfPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points - 1);
    const auto idx = static_cast<std::size_t>(frac * static_cast<double>(full.size() - 1));
    out.push_back(full[idx]);
  }
  return out;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  // Welford's online update keeps variance numerically stable.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  PERQ_REQUIRE(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::min() const {
  PERQ_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  PERQ_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace perq
