// Exponential backoff with seeded jitter and an attempt cap.
//
// Used wherever PERQ retries an operation against a peer that may be down
// for a while: the plant's agent reconnect loop (time unit = control ticks)
// and perq_agent's initial controller connect (time unit = wall seconds).
// The time axis is caller-supplied, so the same policy works for both, and
// the jitter stream comes from perq::Rng so a seeded run retries at exactly
// the same instants every time -- chaos runs stay bit-reproducible.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

namespace perq {

struct BackoffConfig {
  double initial_delay = 1.0;    ///< delay after the first failure (caller units)
  double multiplier = 2.0;       ///< growth per consecutive failure
  double max_delay = 30.0;       ///< delay ceiling before jitter
  double jitter = 0.25;          ///< uniform +/- fraction applied to each delay
  std::size_t max_attempts = 0;  ///< consecutive failures allowed; 0 = unlimited
};

class Backoff {
 public:
  Backoff() : Backoff(BackoffConfig{}, 0) {}
  Backoff(const BackoffConfig& cfg, std::uint64_t seed);

  /// True when the attempt cap is spent; ready() stays false until reset().
  bool exhausted() const;

  /// True when the caller should try now: before any failure, or once the
  /// scheduled retry instant has passed.
  bool ready(double now) const;

  /// Records a failed attempt at `now` and schedules the next retry at
  /// now + jittered(initial * multiplier^failures), capped at max_delay.
  void record_failure(double now);

  /// Success: clears the failure streak; the next attempt is immediate.
  void reset();

  std::size_t attempts() const { return attempts_; }
  double next_attempt_at() const { return next_try_; }

 private:
  BackoffConfig cfg_;
  Rng rng_;
  std::size_t attempts_ = 0;  ///< consecutive failures since last reset
  double next_try_ = 0.0;
  bool armed_ = false;  ///< false until the first failure
};

}  // namespace perq
