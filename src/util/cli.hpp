// Strict command-line numeric parsing shared by the example binaries.
//
// Every PERQ CLI used to carry its own copy of a strtod-based parse_num;
// the copies drifted (perq_chaos accepted trailing garbage, perq_cli
// rejected it). These helpers are the single strict implementation: the
// whole token must parse, the value must be finite, and an optional
// [lo, hi] range is enforced. Failures throw perq::precondition_error with
// a message naming the offending flag, so binaries can turn them into a
// usage line + exit(2) in one catch block and tests can exercise the
// failure paths without spawning processes.
#pragma once

#include <cstdint>
#include <string>

namespace perq::cli {

/// Parses `text` as a finite double. `flag` names the option in error
/// messages ("--f"). Rejects empty strings, trailing garbage ("1.5x"),
/// inf/nan, and hex floats.
double parse_double(const std::string& flag, const std::string& text);

/// parse_double plus an inclusive [lo, hi] range check.
double parse_double_in(const std::string& flag, const std::string& text,
                       double lo, double hi);

/// Parses `text` as a non-negative decimal integer. Rejects signs, trailing
/// garbage, and values that overflow uint64.
std::uint64_t parse_u64(const std::string& flag, const std::string& text);

/// parse_u64 plus an inclusive [lo, hi] range check.
std::uint64_t parse_u64_in(const std::string& flag, const std::string& text,
                           std::uint64_t lo, std::uint64_t hi);

}  // namespace perq::cli
