#include "apps/catalog.hpp"

#include "util/require.hpp"

namespace perq::apps {

namespace {

// Phase lists are tuned so the duration-weighted average power fraction
// reproduces Table 1 exactly, and the shapes echo Fig. 2 (HPCCG ramps up,
// miniMD alternates compute/neighbor phases, RSBench is two-level).

std::vector<AppModel> build_ecp_catalog() {
  std::vector<AppModel> apps;

  // --- Low sensitivity (Fig. 3 left: < 20% degradation at 90 W) ----------
  apps.emplace_back("ASPA", Sensitivity::kLow, 2.1e9, 0.12, 1.3,
                    std::vector<PhaseSpec>{
                        {240.0, 0.24, 1.00, 1.0},
                        {240.0, 0.30, 0.95, 1.1},
                    });  // avg power 27%
  apps.emplace_back("CoHMM", Sensitivity::kLow, 1.8e9, 0.13, 1.3,
                    std::vector<PhaseSpec>{
                        {300.0, 0.25, 1.00, 0.9},
                        {150.0, 0.31, 1.05, 1.2},
                    });  // avg 27%
  apps.emplace_back("HPCCG", Sensitivity::kLow, 2.6e9, 0.15, 1.4,
                    std::vector<PhaseSpec>{
                        {180.0, 0.48, 0.95, 0.9},
                        {180.0, 0.55, 1.00, 1.0},
                        {180.0, 0.62, 1.05, 1.1},
                        {180.0, 0.63, 1.05, 1.1},
                    });  // ramping draw, avg 57% (Fig. 2 left)
  apps.emplace_back("RSBench", Sensitivity::kLow, 1.5e9, 0.18, 1.3,
                    std::vector<PhaseSpec>{
                        {240.0, 0.33, 1.00, 1.0},
                        {240.0, 0.45, 1.00, 1.1},
                    });  // two-level draw, avg 39% (Fig. 2 right)

  // --- Medium sensitivity (Fig. 3 middle) --------------------------------
  apps.emplace_back("CoMD", Sensitivity::kMedium, 3.2e9, 0.38, 1.1,
                    std::vector<PhaseSpec>{
                        {300.0, 0.44, 1.00, 1.0},
                        {200.0, 0.54, 1.05, 1.15},
                    });  // avg 48%
  apps.emplace_back("XSBench", Sensitivity::kMedium, 2.2e9, 0.42, 1.1,
                    std::vector<PhaseSpec>{
                        {360.0, 0.40, 1.00, 0.95},
                        {240.0, 0.475, 1.00, 1.1},
                    });  // avg 43%
  apps.emplace_back("miniFE", Sensitivity::kMedium, 3.8e9, 0.35, 1.15,
                    std::vector<PhaseSpec>{
                        {200.0, 0.55, 0.95, 0.9},
                        {200.0, 0.64, 1.00, 1.05},
                        {200.0, 0.64, 1.05, 1.05},
                    });  // avg 61%
  // --- High sensitivity (Fig. 3 right: > 60% degradation) ----------------
  apps.emplace_back("SWFFT", Sensitivity::kHigh, 2.9e9, 0.62, 1.0,
                    std::vector<PhaseSpec>{
                        {240.0, 0.24, 1.00, 0.9},   // transpose/communication
                        {240.0, 0.32, 1.10, 1.1},   // FFT compute
                    });  // avg 28%
  apps.emplace_back("SimpleMOC", Sensitivity::kHigh, 4.5e9, 0.70, 1.0,
                    std::vector<PhaseSpec>{
                        {400.0, 0.66, 1.00, 1.0},
                        {200.0, 0.75, 1.05, 1.1},
                    });  // avg 69%
  apps.emplace_back("miniMD", Sensitivity::kHigh, 4.1e9, 0.65, 1.0,
                    std::vector<PhaseSpec>{
                        {120.0, 0.52, 0.95, 0.85},  // neighbor rebuild
                        {120.0, 0.78, 1.05, 1.15},  // force computation
                        {120.0, 0.52, 0.95, 0.85},
                        {120.0, 0.78, 1.05, 1.15},
                    });  // sawtooth draw, avg 65% (Fig. 2 middle)
  return apps;
}

std::vector<AppModel> build_training_catalog() {
  // Synthetic NPB-like kernels spanning the sensitivity/power space. Names
  // follow the NAS Parallel Benchmarks, which the paper uses for training.
  std::vector<AppModel> apps;
  apps.emplace_back("npb.bt", Sensitivity::kMedium, 2.4e9, 0.40, 1.1,
                    std::vector<PhaseSpec>{{240.0, 0.50, 1.0, 1.0}});
  apps.emplace_back("npb.cg", Sensitivity::kLow, 1.9e9, 0.14, 1.3,
                    std::vector<PhaseSpec>{{300.0, 0.30, 1.0, 1.0},
                                           {150.0, 0.36, 1.0, 1.1}});
  apps.emplace_back("npb.ep", Sensitivity::kHigh, 3.6e9, 0.72, 1.0,
                    std::vector<PhaseSpec>{{600.0, 0.70, 1.0, 1.0}});
  apps.emplace_back("npb.ft", Sensitivity::kMedium, 2.8e9, 0.45, 1.1,
                    std::vector<PhaseSpec>{{200.0, 0.38, 1.0, 0.9},
                                           {200.0, 0.52, 1.1, 1.1}});
  apps.emplace_back("npb.is", Sensitivity::kLow, 1.4e9, 0.20, 1.3,
                    std::vector<PhaseSpec>{{240.0, 0.26, 1.0, 1.0}});
  apps.emplace_back("npb.lu", Sensitivity::kMedium, 3.0e9, 0.36, 1.15,
                    std::vector<PhaseSpec>{{180.0, 0.46, 1.0, 1.0},
                                           {180.0, 0.58, 1.0, 1.1}});
  apps.emplace_back("npb.mg", Sensitivity::kLow, 2.2e9, 0.17, 1.35,
                    std::vector<PhaseSpec>{{300.0, 0.34, 1.0, 1.0}});
  apps.emplace_back("npb.sp", Sensitivity::kHigh, 3.9e9, 0.60, 1.05,
                    std::vector<PhaseSpec>{{150.0, 0.55, 0.95, 0.9},
                                           {150.0, 0.68, 1.05, 1.1}});
  return apps;
}

}  // namespace

const std::vector<AppModel>& ecp_catalog() {
  static const std::vector<AppModel> catalog = build_ecp_catalog();
  return catalog;
}

const std::vector<AppModel>& training_catalog() {
  static const std::vector<AppModel> catalog = build_training_catalog();
  return catalog;
}

const AppModel& find_app(const std::string& name) {
  for (const auto& app : ecp_catalog()) {
    if (app.name() == name) return app;
  }
  PERQ_REQUIRE(false, "unknown application: " + name);
  // Unreachable; PERQ_REQUIRE throws.
  throw precondition_error("unreachable");
}

}  // namespace perq::apps
