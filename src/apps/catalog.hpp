// Application catalogs.
//
// * ecp_catalog(): the ten ECP proxy applications of paper Table 1, with
//   sensitivity classes per Fig. 3 and phase behavior per Fig. 2. These are
//   the *evaluation* workloads.
// * training_catalog(): a synthetic NPB-like suite used exclusively to
//   identify the node state-space model, preserving the paper's claim that
//   the model is built from benchmarks disjoint from the evaluation set.
#pragma once

#include <vector>

#include "apps/app_model.hpp"

namespace perq::apps {

/// The ten ECP proxy applications (Table 1). Index order matches the table.
const std::vector<AppModel>& ecp_catalog();

/// The NPB-like training suite (8 synthetic kernels, disjoint from the
/// evaluation applications).
const std::vector<AppModel>& training_catalog();

/// Looks an application up by name in ecp_catalog(); throws
/// perq::precondition_error when absent.
const AppModel& find_app(const std::string& name);

}  // namespace perq::apps
