// Analytic application power/performance models.
//
// These replace the measured ECP proxy-app profiles of the paper (Table 1,
// Figs. 2 and 3). Each application is described by
//   * a power-cap -> performance curve with a demand-derived saturation
//     knee: RAPL throttling only hurts when the cap pinches what the
//     application would draw in its current phase, so
//       knee(phase) = clamp(1.25 * demand(phase), 115 W, TDP)
//       perf(cap)   = 1                                      for cap >= knee
//       perf(cap)   = 1 - d * ((knee-cap)/(knee-cap_min))^k  below the knee,
//     with depth `d` and shape `k` calibrated per app so the 90 W anchor
//     matches Fig. 3 (low sensitivity < 20% degradation, high > 60%). The
//     1.25 headroom models sub-interval draw spikes; the 115 W floor means
//     even low-draw applications feel deep caps (as Fig. 3 shows), and
//   * a cyclic phase sequence whose per-phase power demand and sensitivity
//     multipliers reproduce the time-varying draw of Fig. 2.
// The controller never sees these curves -- it only observes (cap, IPS)
// samples, exactly as on real hardware.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace perq::apps {

/// Electrical envelope of a compute node (Intel Xeon E5-2686 per the paper).
struct PowerSpec {
  double tdp = 290.0;      ///< thermal design power, max cap (W)
  double cap_min = 90.0;   ///< lowest settable power-cap (W)
  double idle = 45.0;      ///< draw of an idle node (W); caps cannot go below
};

/// Returns the node power spec used across PERQ (a single node type, as the
/// paper assumes one model per node type).
const PowerSpec& node_power_spec();

/// Power-cap sensitivity class (paper Fig. 3 taxonomy).
enum class Sensitivity { kLow, kMedium, kHigh };

std::string to_string(Sensitivity s);

/// One execution phase of an application.
struct PhaseSpec {
  double duration_s = 300.0;       ///< nominal phase length
  double power_fraction = 0.5;     ///< natural draw in this phase (fraction of TDP)
  double perf_weight = 1.0;        ///< IPS multiplier relative to the app peak
  double sensitivity_scale = 1.0;  ///< scales the degradation depth d
};

/// Immutable model of one application's power/performance behavior.
class AppModel {
 public:
  /// `deg_at_min` is the performance lost at cap_min (d in the file
  /// comment's formula, in (0,1)); `shape` is the curve exponent k (> 0;
  /// larger k = flatter near the knee).
  AppModel(std::string name, Sensitivity sensitivity, double peak_node_ips,
           double deg_at_min, double shape, std::vector<PhaseSpec> phases);

  const std::string& name() const { return name_; }
  Sensitivity sensitivity() const { return sensitivity_; }
  /// IPS of one node at TDP in a perf_weight=1 phase.
  double peak_node_ips() const { return peak_node_ips_; }
  /// Cap at which this app reaches full performance in phase i (the
  /// demand-derived saturation knee).
  double knee_w(std::size_t phase_idx) const;
  std::size_t phase_count() const { return phases_.size(); }
  const PhaseSpec& phase(std::size_t i) const;

  /// Performance fraction in [0,1] delivered under `cap_w` during phase i
  /// (1.0 = unthrottled). Monotone non-decreasing in cap_w.
  double perf_fraction(double cap_w, std::size_t phase_idx) const;

  /// IPS of one node under `cap_w` during phase i (no noise; the simulator
  /// adds measurement noise).
  double node_ips(double cap_w, std::size_t phase_idx) const;

  /// Natural (uncapped) power demand in phase i (W).
  double power_demand_w(std::size_t phase_idx) const;

  /// Actual draw under `cap_w` in phase i: min(cap, demand), floored at
  /// idle power (a capped node still idles).
  double power_draw_w(double cap_w, std::size_t phase_idx) const;

  /// Phase index at `elapsed_s` seconds of execution (phases cycle).
  std::size_t phase_at(double elapsed_s) const;

  /// Duration-weighted average power fraction across phases at TDP
  /// (the Table 1 "Avg. Power (% of TDP)" quantity).
  double avg_power_fraction() const;

 private:
  std::string name_;
  Sensitivity sensitivity_;
  double peak_node_ips_;
  double deg_at_min_;
  double shape_;
  std::vector<PhaseSpec> phases_;
  double cycle_s_;
};

}  // namespace perq::apps
