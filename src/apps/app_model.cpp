#include "apps/app_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace perq::apps {

const PowerSpec& node_power_spec() {
  static const PowerSpec spec{};
  return spec;
}

std::string to_string(Sensitivity s) {
  switch (s) {
    case Sensitivity::kLow: return "low";
    case Sensitivity::kMedium: return "medium";
    case Sensitivity::kHigh: return "high";
  }
  return "unknown";
}

namespace {
// Saturation-knee derivation: headroom over the phase demand for
// sub-interval draw spikes, floored so that deep caps pinch every app
// (Fig. 3 shows degradation at 90 W for all ten applications).
constexpr double kKneeHeadroom = 1.25;
constexpr double kKneeFloorW = 115.0;
}  // namespace

AppModel::AppModel(std::string name, Sensitivity sensitivity, double peak_node_ips,
                   double deg_at_min, double shape, std::vector<PhaseSpec> phases)
    : name_(std::move(name)),
      sensitivity_(sensitivity),
      peak_node_ips_(peak_node_ips),
      deg_at_min_(deg_at_min),
      shape_(shape),
      phases_(std::move(phases)) {
  PERQ_REQUIRE(!name_.empty(), "application name must be non-empty");
  PERQ_REQUIRE(peak_node_ips_ > 0.0, "peak IPS must be positive");
  PERQ_REQUIRE(deg_at_min_ > 0.0 && deg_at_min_ < 1.0, "deg_at_min in (0,1)");
  PERQ_REQUIRE(shape_ > 0.0, "shape must be positive");
  PERQ_REQUIRE(!phases_.empty(), "app needs at least one phase");
  cycle_s_ = 0.0;
  const PowerSpec& spec = node_power_spec();
  for (const auto& p : phases_) {
    PERQ_REQUIRE(p.duration_s > 0.0, "phase duration must be positive");
    PERQ_REQUIRE(p.power_fraction > 0.0 && p.power_fraction <= 1.0,
                 "phase power fraction in (0,1]");
    PERQ_REQUIRE(p.perf_weight > 0.0, "phase perf weight must be positive");
    PERQ_REQUIRE(p.sensitivity_scale > 0.0, "phase sensitivity scale must be positive");
    PERQ_REQUIRE(p.power_fraction * spec.tdp >= spec.idle,
                 "phase demand below idle power");
    cycle_s_ += p.duration_s;
  }
}

const PhaseSpec& AppModel::phase(std::size_t i) const {
  PERQ_REQUIRE(i < phases_.size(), "phase index out of range");
  return phases_[i];
}

double AppModel::knee_w(std::size_t phase_idx) const {
  const PowerSpec& spec = node_power_spec();
  return std::clamp(kKneeHeadroom * power_demand_w(phase_idx), kKneeFloorW, spec.tdp);
}

double AppModel::perf_fraction(double cap_w, std::size_t phase_idx) const {
  const PhaseSpec& ph = phase(phase_idx);
  const PowerSpec& spec = node_power_spec();
  const double cap = std::clamp(cap_w, spec.cap_min, spec.tdp);
  const double knee = knee_w(phase_idx);
  if (cap >= knee) return 1.0;
  const double depth = std::min(0.95, deg_at_min_ * ph.sensitivity_scale);
  const double frac = (knee - cap) / (knee - spec.cap_min);
  return 1.0 - depth * std::pow(frac, shape_);
}

double AppModel::node_ips(double cap_w, std::size_t phase_idx) const {
  return peak_node_ips_ * phase(phase_idx).perf_weight *
         perf_fraction(cap_w, phase_idx);
}

double AppModel::power_demand_w(std::size_t phase_idx) const {
  return phase(phase_idx).power_fraction * node_power_spec().tdp;
}

double AppModel::power_draw_w(double cap_w, std::size_t phase_idx) const {
  const PowerSpec& spec = node_power_spec();
  const double cap = std::clamp(cap_w, spec.cap_min, spec.tdp);
  return std::max(spec.idle, std::min(cap, power_demand_w(phase_idx)));
}

std::size_t AppModel::phase_at(double elapsed_s) const {
  PERQ_REQUIRE(elapsed_s >= 0.0, "elapsed time must be non-negative");
  if (phases_.size() == 1) return 0;
  double t = std::fmod(elapsed_s, cycle_s_);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (t < phases_[i].duration_s) return i;
    t -= phases_[i].duration_s;
  }
  return phases_.size() - 1;  // numeric edge at the cycle boundary
}

double AppModel::avg_power_fraction() const {
  double acc = 0.0;
  for (const auto& p : phases_) acc += p.duration_s * p.power_fraction;
  return acc / cycle_s_;
}

}  // namespace perq::apps
