#include "sched/job.hpp"

#include "util/require.hpp"

namespace perq::sched {

std::string to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kFinished: return "finished";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

Job::Job(trace::JobSpec spec, const apps::AppModel* app)
    : spec_(std::move(spec)), app_(app) {
  PERQ_REQUIRE(app_ != nullptr, "job needs an application model");
  PERQ_REQUIRE(spec_.nodes >= 1, "job must span at least one node");
  PERQ_REQUIRE(spec_.runtime_ref_s > 0.0, "job runtime must be positive");
}

void Job::start(double now, std::vector<std::size_t> node_ids) {
  PERQ_REQUIRE(state_ == JobState::kQueued, "job already started");
  PERQ_REQUIRE(node_ids.size() == spec_.nodes, "node allocation size mismatch");
  state_ = JobState::kRunning;
  node_ids_ = std::move(node_ids);
  start_time_s_ = now;
}

void Job::record_interval(double dt, double min_perf, double job_ips, double cap_w) {
  PERQ_REQUIRE(state_ == JobState::kRunning, "recording on a non-running job");
  PERQ_REQUIRE(dt > 0.0, "dt must be positive");
  PERQ_REQUIRE(min_perf >= 0.0 && min_perf <= 1.5, "perf fraction out of range");
  progress_s_ += dt * min_perf;
  last_min_perf_ = min_perf;
  last_job_ips_ = job_ips;
  last_cap_w_ = cap_w;
}

void Job::finish(double now) {
  PERQ_REQUIRE(state_ == JobState::kRunning, "finishing a non-running job");
  state_ = JobState::kFinished;
  finish_time_s_ = now;
  node_ids_.clear();
}

void Job::cancel(double now) {
  PERQ_REQUIRE(state_ == JobState::kQueued || state_ == JobState::kRunning,
               "cancelling a job that already ended");
  state_ = JobState::kCancelled;
  finish_time_s_ = now;
  node_ids_.clear();
}

void Job::requeue() {
  PERQ_REQUIRE(state_ == JobState::kRunning, "requeueing a non-running job");
  state_ = JobState::kQueued;
  node_ids_.clear();
  progress_s_ = 0.0;
  start_time_s_ = -1.0;
  finish_time_s_ = -1.0;
  last_job_ips_ = 0.0;
  last_cap_w_ = 0.0;
  last_min_perf_ = 1.0;
}

std::size_t Job::current_phase() const {
  return app_->phase_at(spec_.phase_offset_s + progress_s_);
}

double Job::runtime_s() const {
  PERQ_REQUIRE(state_ == JobState::kFinished, "runtime of an unfinished job");
  return finish_time_s_ - start_time_s_;
}

void Job::sync_runtime_state(double progress_s, double last_min_perf,
                             double last_job_ips, double last_cap_w) {
  PERQ_REQUIRE(progress_s >= 0.0, "progress must be non-negative");
  progress_s_ = progress_s;
  last_min_perf_ = last_min_perf;
  last_job_ips_ = last_job_ips;
  last_cap_w_ = last_cap_w;
}

double Job::remaining_node_hours() const {
  return std::max(0.0, remaining_ref_s()) * static_cast<double>(spec_.nodes) / 3600.0;
}

}  // namespace perq::sched
