#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace perq::sched {

Scheduler::Scheduler(std::size_t backfill_window, BackfillMode mode,
                     std::size_t max_head_bypass)
    : backfill_window_(backfill_window),
      mode_(mode),
      max_head_bypass_(max_head_bypass) {}

void Scheduler::enqueue(Job* job) {
  PERQ_REQUIRE(job != nullptr, "cannot enqueue a null job");
  PERQ_REQUIRE(job->state() == JobState::kQueued, "job must be in queued state");
  queue_.push_back(job);
}

bool Scheduler::remove(const Job* job) {
  const auto it = std::find(queue_.begin(), queue_.end(), job);
  if (it == queue_.end()) return false;
  if (job == bypassed_head_) {
    bypassed_head_ = nullptr;
    head_bypass_ = 0;
  }
  queue_.erase(it);
  return true;
}

std::vector<Job*> Scheduler::schedule(sim::Cluster& cluster, double now,
                                      const std::vector<Job*>* running,
                                      std::size_t node_limit) {
  std::vector<Job*> started;
  std::size_t node_budget = node_limit;
  const auto effective_free = [&] {
    return std::min(cluster.free_count(), node_budget);
  };

  // FCFS prefix: start head jobs while they fit.
  while (!queue_.empty()) {
    Job* head = queue_.front();
    if (head->spec().nodes > effective_free()) break;
    auto nodes = cluster.allocate(head->spec().nodes);
    PERQ_ASSERT(!nodes.empty(), "allocation failed despite free-count check");
    node_budget -= head->spec().nodes;
    head->start(now, std::move(nodes));
    started.push_back(head);
    queue_.pop_front();
  }
  backfill_suspended_ = false;
  if (queue_.empty()) {
    // No blocked head: nothing is being bypassed.
    bypassed_head_ = nullptr;
    head_bypass_ = 0;
    return started;
  }
  if (backfill_window_ == 0) return started;

  // Starvation guard: a new blocked head restarts the bypass count; once
  // the same head has been bypassed max_head_bypass_ times, backfill stops
  // until the head gets on the machine.
  if (queue_.front() != bypassed_head_) {
    bypassed_head_ = queue_.front();
    head_bypass_ = 0;
  }
  if (max_head_bypass_ > 0 && head_bypass_ >= max_head_bypass_) {
    backfill_suspended_ = true;
    return started;
  }

  // EASY reservation for the blocked head: walk the running jobs' estimated
  // completions (start + the user's walltime estimate) until enough nodes
  // accumulate.
  double shadow_time = std::numeric_limits<double>::infinity();
  std::size_t nodes_free_at_shadow = 0;
  if (mode_ == BackfillMode::kEasy) {
    PERQ_REQUIRE(running != nullptr, "EASY backfill requires the running-job list");
    const Job* head = queue_.front();
    std::vector<std::pair<double, std::size_t>> completions;  // (est end, nodes)
    for (const Job* job : *running) {
      const double est_end = job->start_time_s() + job->walltime_est_s();
      completions.emplace_back(std::max(est_end, now), job->spec().nodes);
    }
    std::sort(completions.begin(), completions.end());
    std::size_t free_nodes = effective_free();
    shadow_time = now;
    for (const auto& [end, n] : completions) {
      if (free_nodes >= head->spec().nodes) break;
      free_nodes += n;
      shadow_time = end;
    }
    // If even all completions cannot free enough nodes, the head is simply
    // too big for the machine fragment; treat the reservation as infinite.
    if (free_nodes < head->spec().nodes) {
      shadow_time = std::numeric_limits<double>::infinity();
    }
    nodes_free_at_shadow = free_nodes;
    last_shadow_time_ = std::isfinite(shadow_time) ? shadow_time : -1.0;
  }
  // Nodes the head leaves unused at its reservation: backfill jobs that fit
  // inside this surplus can never delay the head regardless of runtime. The
  // surplus is consumed by each admitted job expected to outlive the
  // reservation -- admitting several against the same surplus would delay
  // the head.
  std::size_t shadow_surplus =
      mode_ == BackfillMode::kEasy && !queue_.empty() &&
              nodes_free_at_shadow >= queue_.front()->spec().nodes
          ? nodes_free_at_shadow - queue_.front()->spec().nodes
          : 0;

  // Backfill behind the blocked head. Erasing from a deque mid-scan is fine
  // at these sizes.
  bool bypassed = false;
  std::size_t examined = 0;
  for (auto it = queue_.begin() + 1;
       it != queue_.end() && examined < backfill_window_ && effective_free() > 0;
       ++examined) {
    Job* candidate = *it;
    const bool fits_now = candidate->spec().nodes <= effective_free();
    bool allowed = fits_now;
    bool consumes_surplus = false;
    if (allowed && mode_ == BackfillMode::kEasy) {
      const double est_end = now + candidate->walltime_est_s();
      if (est_end <= shadow_time) {
        // Returns its nodes before the reservation; no surplus consumed.
      } else if (candidate->spec().nodes <= shadow_surplus) {
        consumes_surplus = true;
      } else {
        allowed = false;
      }
    }
    if (allowed) {
      if (consumes_surplus) shadow_surplus -= candidate->spec().nodes;
      auto nodes = cluster.allocate(candidate->spec().nodes);
      PERQ_ASSERT(!nodes.empty(), "allocation failed despite free-count check");
      node_budget -= candidate->spec().nodes;
      candidate->start(now, std::move(nodes));
      started.push_back(candidate);
      bypassed = true;
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  if (bypassed) ++head_bypass_;
  return started;
}

}  // namespace perq::sched
