#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace perq::sched {

Scheduler::Scheduler(std::size_t backfill_window, BackfillMode mode)
    : backfill_window_(backfill_window), mode_(mode) {}

void Scheduler::enqueue(Job* job) {
  PERQ_REQUIRE(job != nullptr, "cannot enqueue a null job");
  PERQ_REQUIRE(job->state() == JobState::kQueued, "job must be in queued state");
  queue_.push_back(job);
}

std::vector<Job*> Scheduler::schedule(sim::Cluster& cluster, double now,
                                      const std::vector<Job*>* running) {
  std::vector<Job*> started;

  // FCFS prefix: start head jobs while they fit.
  while (!queue_.empty()) {
    Job* head = queue_.front();
    auto nodes = cluster.allocate(head->spec().nodes);
    if (nodes.empty()) break;
    head->start(now, std::move(nodes));
    started.push_back(head);
    queue_.pop_front();
  }
  if (queue_.empty() || backfill_window_ == 0) return started;

  // EASY reservation for the blocked head: walk the running jobs' estimated
  // completions (start + user runtime estimate; the trace reference runtime
  // plays the role of the user estimate) until enough nodes accumulate.
  double shadow_time = std::numeric_limits<double>::infinity();
  std::size_t nodes_free_at_shadow = 0;
  if (mode_ == BackfillMode::kEasy) {
    PERQ_REQUIRE(running != nullptr, "EASY backfill requires the running-job list");
    const Job* head = queue_.front();
    std::vector<std::pair<double, std::size_t>> completions;  // (est end, nodes)
    for (const Job* job : *running) {
      const double est_end = job->start_time_s() + job->spec().runtime_ref_s;
      completions.emplace_back(std::max(est_end, now), job->spec().nodes);
    }
    std::sort(completions.begin(), completions.end());
    std::size_t free_nodes = cluster.free_count();
    shadow_time = now;
    for (const auto& [end, n] : completions) {
      if (free_nodes >= head->spec().nodes) break;
      free_nodes += n;
      shadow_time = end;
    }
    // If even all completions cannot free enough nodes, the head is simply
    // too big for the machine fragment; treat the reservation as infinite.
    if (free_nodes < head->spec().nodes) {
      shadow_time = std::numeric_limits<double>::infinity();
    }
    nodes_free_at_shadow = free_nodes;
    last_shadow_time_ = std::isfinite(shadow_time) ? shadow_time : -1.0;
  }
  // Nodes the head leaves unused at its reservation: backfill jobs that fit
  // inside this surplus can never delay the head regardless of runtime.
  const std::size_t shadow_surplus =
      mode_ == BackfillMode::kEasy && !queue_.empty() &&
              nodes_free_at_shadow >= queue_.front()->spec().nodes
          ? nodes_free_at_shadow - queue_.front()->spec().nodes
          : 0;

  // Backfill behind the blocked head. Erasing from a deque mid-scan is fine
  // at these sizes.
  std::size_t examined = 0;
  for (auto it = queue_.begin() + 1;
       it != queue_.end() && examined < backfill_window_ && cluster.free_count() > 0;
       ++examined) {
    Job* candidate = *it;
    const bool fits_now = candidate->spec().nodes <= cluster.free_count();
    bool allowed = fits_now;
    if (allowed && mode_ == BackfillMode::kEasy) {
      const double est_end = now + candidate->spec().runtime_ref_s;
      allowed = est_end <= shadow_time || candidate->spec().nodes <= shadow_surplus;
    }
    if (allowed) {
      auto nodes = cluster.allocate(candidate->spec().nodes);
      PERQ_ASSERT(!nodes.empty(), "allocation failed despite free-count check");
      candidate->start(now, std::move(nodes));
      started.push_back(candidate);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return started;
}

}  // namespace perq::sched
