// Named scheduler partitions (the slurmctld partition table).
//
// A partition is a named slice of the machine with its own admission limits
// and scheduling priority: a per-job size ceiling, a per-job walltime
// ceiling (checked against the *estimate* -- the controller never sees true
// runtimes), and a concurrent-node ceiling that bounds how much of the
// cluster the partition's running jobs may hold at once. Placement runs
// partitions in descending priority order, each with its own FCFS+backfill
// core (scheduler.hpp) fed from the SchedCtl submit queue.
//
// Nodes are fungible here (the cluster is a free-list, not a topology), so
// a partition's "node set" is a capacity, not an enumeration; that is the
// one deliberate simplification versus SLURM's per-partition node lists.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace perq::sched {

/// Static description of one partition.
struct PartitionConfig {
  std::string name = "batch";
  int priority = 0;               ///< higher = placed first
  std::size_t max_nodes = 0;      ///< concurrent-node ceiling (0 = machine)
  std::size_t max_job_nodes = 0;  ///< per-job size ceiling (0 = max_nodes)
  double max_walltime_s = 0.0;    ///< per-job estimate ceiling (0 = unlimited)
};

/// Why a submission was refused.
enum class AdmitResult {
  kOk,
  kTooManyNodes,      ///< job larger than the partition's per-job ceiling
  kWalltimeExceeded,  ///< estimate above the partition's walltime ceiling
};

std::string to_string(AdmitResult r);

/// Runtime state of one partition: its config, its backfill core, and the
/// jobs it currently has on the machine.
class Partition {
 public:
  /// `machine_nodes` resolves the 0-defaults in `cfg`.
  Partition(PartitionConfig cfg, std::size_t machine_nodes,
            std::size_t backfill_window, BackfillMode mode,
            std::size_t max_head_bypass);

  const PartitionConfig& config() const { return cfg_; }
  const std::string& name() const { return cfg_.name; }

  /// Checks a job against the per-job admission limits.
  AdmitResult admit(const Job& job) const;

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }

  /// Jobs of this partition currently on the machine, in start order (the
  /// order EASY's shadow-time computation walks).
  const std::vector<Job*>& running() const { return running_; }
  std::vector<Job*>& running() { return running_; }

  std::size_t nodes_in_use() const { return nodes_in_use_; }

  /// Nodes this partition may still take under its concurrent ceiling.
  std::size_t headroom() const {
    return cfg_.max_nodes > nodes_in_use_ ? cfg_.max_nodes - nodes_in_use_ : 0;
  }

  void note_started(Job* job);
  void note_departed(Job* job);  ///< finished, cancelled, or requeued

 private:
  PartitionConfig cfg_;
  Scheduler scheduler_;
  std::vector<Job*> running_;
  std::size_t nodes_in_use_ = 0;
};

}  // namespace perq::sched
