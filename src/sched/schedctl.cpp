#include "sched/schedctl.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/require.hpp"

namespace perq::sched {

std::string to_string(JobEvent e) {
  switch (e) {
    case JobEvent::kSubmitted: return "submitted";
    case JobEvent::kEligible: return "eligible";
    case JobEvent::kStarted: return "started";
    case JobEvent::kFinished: return "finished";
    case JobEvent::kCancelled: return "cancelled";
    case JobEvent::kRequeued: return "requeued";
  }
  return "unknown";
}

SchedCtl::SchedCtl(SchedCtlConfig cfg, std::size_t machine_nodes)
    : cfg_(std::move(cfg)) {
  PERQ_REQUIRE(machine_nodes >= 1, "controller needs a machine");
  if (cfg_.partitions.empty()) cfg_.partitions.push_back(PartitionConfig{});
  partitions_.reserve(cfg_.partitions.size());
  for (const auto& pc : cfg_.partitions) {
    for (const auto& existing : partitions_) {
      PERQ_REQUIRE(existing.name() != pc.name, "duplicate partition name");
    }
    partitions_.emplace_back(pc, machine_nodes, cfg_.backfill_window,
                             cfg_.backfill_mode, cfg_.max_head_bypass);
  }
  priority_order_.resize(partitions_.size());
  for (std::size_t i = 0; i < priority_order_.size(); ++i) {
    priority_order_[i] = i;
  }
  std::stable_sort(priority_order_.begin(), priority_order_.end(),
                   [this](std::size_t a, std::size_t b) {
                     return partitions_[a].config().priority >
                            partitions_[b].config().priority;
                   });
}

std::size_t SchedCtl::partition_index(const std::string& name) const {
  if (name.empty()) return 0;
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    if (partitions_[i].name() == name) return i;
  }
  PERQ_REQUIRE(false, "unknown partition: " + name);
  return 0;  // unreachable
}

AdmitResult SchedCtl::submit(const trace::JobSpec& spec,
                             const apps::AppModel* app,
                             const std::string& partition_name) {
  PERQ_REQUIRE(app != nullptr, "job needs an application model");
  PERQ_REQUIRE(index_by_id_.find(spec.id) == index_by_id_.end(),
               "duplicate job id");
  const std::size_t pidx = partition_index(partition_name);

  // Admission is checked against a throwaway Job so a refusal leaves no
  // trace in the controller's tables.
  {
    Job probe(spec, app);
    const AdmitResult verdict = partitions_[pidx].admit(probe);
    if (verdict != AdmitResult::kOk) return verdict;
  }

  const std::size_t idx = jobs_.size();
  jobs_.emplace_back(spec, app);
  JobRecord rec;
  rec.job = &jobs_.back();
  rec.partition = static_cast<std::uint32_t>(pidx);
  rec.submit_s = spec.submit_time_s;
  records_.push_back(rec);
  index_by_id_.emplace(spec.id, idx);
  pending_.emplace(spec.submit_time_s, idx);
  fire(JobEvent::kSubmitted, records_[idx]);
  return AdmitResult::kOk;
}

double SchedCtl::next_submit_time() const {
  if (pending_.empty()) return std::numeric_limits<double>::infinity();
  return pending_.top().first;
}

std::vector<Job*> SchedCtl::schedule_pass(sim::Cluster& cluster, double now) {
  // Release due submissions to their partition queues.
  while (!pending_.empty() && pending_.top().first <= now) {
    const std::size_t idx = pending_.top().second;
    pending_.pop();
    JobRecord& rec = records_[idx];
    // Cancelled while pending: the record already ended; skip silently.
    if (rec.job->state() == JobState::kCancelled) continue;
    rec.eligible_s = now;
    partitions_[rec.partition].scheduler().enqueue(rec.job);
    fire(JobEvent::kEligible, rec);
  }

  // Place, highest-priority partition first, against the shared free pool.
  std::vector<Job*> started;
  for (const std::size_t pidx : priority_order_) {
    Partition& part = partitions_[pidx];
    if (part.scheduler().queue_empty()) continue;
    const std::vector<Job*> placed = part.scheduler().schedule(
        cluster, now, &part.running(), part.headroom());
    for (Job* job : placed) {
      part.note_started(job);
      JobRecord& rec = records_[index_by_id_.at(job->spec().id)];
      if (rec.start_s < 0.0) rec.start_s = now;  // keep first-start on requeue
      ++running_count_;
      fire(JobEvent::kStarted, rec);
    }
    started.insert(started.end(), placed.begin(), placed.end());
  }
  return started;
}

void SchedCtl::complete(Job* job, sim::Cluster& cluster, double now) {
  PERQ_REQUIRE(job != nullptr && job->state() == JobState::kRunning,
               "complete() needs a running job");
  JobRecord& rec = records_[index_by_id_.at(job->spec().id)];
  const std::vector<std::size_t> nodes = job->node_ids();
  job->finish(now);
  cluster.release(nodes);
  partitions_[rec.partition].note_departed(job);
  rec.end_s = now;
  PERQ_ASSERT(running_count_ > 0, "controller running-count accounting");
  --running_count_;
  ++finished_count_;
  fire(JobEvent::kFinished, rec);
}

bool SchedCtl::cancel(int job_id, sim::Cluster& cluster, double now) {
  JobRecord* rec = find(job_id);
  if (rec == nullptr) return false;
  Job* job = rec->job;
  switch (job->state()) {
    case JobState::kQueued: {
      // Eligible jobs sit in the partition queue; pending ones are lazily
      // skipped when their submit time comes due.
      Partition& part = partitions_[rec->partition];
      part.scheduler().remove(job);
      job->cancel(now);
      break;
    }
    case JobState::kRunning: {
      const std::vector<std::size_t> nodes = job->node_ids();
      job->cancel(now);
      cluster.release(nodes);
      partitions_[rec->partition].note_departed(job);
      PERQ_ASSERT(running_count_ > 0, "controller running-count accounting");
      --running_count_;
      break;
    }
    default:
      return false;  // already finished or cancelled
  }
  rec->end_s = now;
  ++cancelled_count_;
  fire(JobEvent::kCancelled, *rec);
  return true;
}

bool SchedCtl::requeue(int job_id, sim::Cluster& cluster, double now) {
  JobRecord* rec = find(job_id);
  if (rec == nullptr || rec->job->state() != JobState::kRunning) return false;
  Job* job = rec->job;
  const std::vector<std::size_t> nodes = job->node_ids();
  cluster.release(nodes);
  partitions_[rec->partition].note_departed(job);
  job->requeue();
  partitions_[rec->partition].scheduler().enqueue(job);
  PERQ_ASSERT(running_count_ > 0, "controller running-count accounting");
  --running_count_;
  ++rec->requeues;
  fire(JobEvent::kRequeued, *rec);
  (void)now;
  return true;
}

const JobRecord* SchedCtl::record(int job_id) const {
  const auto it = index_by_id_.find(job_id);
  return it == index_by_id_.end() ? nullptr : &records_[it->second];
}

Job* SchedCtl::job(int job_id) {
  const auto it = index_by_id_.find(job_id);
  return it == index_by_id_.end() ? nullptr : &jobs_[it->second];
}

std::size_t SchedCtl::queued() const {
  std::size_t n = 0;
  for (const auto& part : partitions_) n += part.scheduler().queued_count();
  return n;
}

JobRecord* SchedCtl::find(int job_id) {
  const auto it = index_by_id_.find(job_id);
  return it == index_by_id_.end() ? nullptr : &records_[it->second];
}

}  // namespace perq::sched
