#include "sched/partition.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace perq::sched {

std::string to_string(AdmitResult r) {
  switch (r) {
    case AdmitResult::kOk: return "ok";
    case AdmitResult::kTooManyNodes: return "too-many-nodes";
    case AdmitResult::kWalltimeExceeded: return "walltime-exceeded";
  }
  return "unknown";
}

Partition::Partition(PartitionConfig cfg, std::size_t machine_nodes,
                     std::size_t backfill_window, BackfillMode mode,
                     std::size_t max_head_bypass)
    : cfg_(std::move(cfg)),
      scheduler_(backfill_window, mode, max_head_bypass) {
  PERQ_REQUIRE(!cfg_.name.empty(), "partition needs a name");
  PERQ_REQUIRE(machine_nodes >= 1, "partition needs a machine");
  if (cfg_.max_nodes == 0 || cfg_.max_nodes > machine_nodes) {
    cfg_.max_nodes = machine_nodes;
  }
  if (cfg_.max_job_nodes == 0 || cfg_.max_job_nodes > cfg_.max_nodes) {
    cfg_.max_job_nodes = cfg_.max_nodes;
  }
  PERQ_REQUIRE(cfg_.max_walltime_s >= 0.0, "walltime ceiling must be >= 0");
}

AdmitResult Partition::admit(const Job& job) const {
  if (job.spec().nodes > cfg_.max_job_nodes) return AdmitResult::kTooManyNodes;
  if (cfg_.max_walltime_s > 0.0 && job.walltime_est_s() > cfg_.max_walltime_s) {
    return AdmitResult::kWalltimeExceeded;
  }
  return AdmitResult::kOk;
}

void Partition::note_started(Job* job) {
  running_.push_back(job);
  nodes_in_use_ += job->spec().nodes;
}

void Partition::note_departed(Job* job) {
  const auto it = std::find(running_.begin(), running_.end(), job);
  PERQ_ASSERT(it != running_.end(), "departing job not running in partition");
  running_.erase(it);  // preserve start order for the EASY shadow walk
  PERQ_ASSERT(nodes_in_use_ >= job->spec().nodes, "partition node accounting");
  nodes_in_use_ -= job->spec().nodes;
}

}  // namespace perq::sched
