// Runtime state of one job in the simulated system.
//
// Progress is tracked in *reference seconds*: a node running at perf
// fraction p advances the job by p * dt. A job finishes when its progress
// reaches the trace's reference runtime, so at full power its runtime equals
// the trace runtime exactly, and under power caps it inflates by the
// (time-averaged) inverse performance fraction -- which is precisely the
// "performance degradation" the paper's fairness metrics measure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "apps/app_model.hpp"
#include "trace/trace.hpp"

namespace perq::sched {

enum class JobState { kQueued, kRunning, kFinished, kCancelled };

std::string to_string(JobState s);

class Job {
 public:
  Job(trace::JobSpec spec, const apps::AppModel* app);

  const trace::JobSpec& spec() const { return spec_; }
  const apps::AppModel& app() const { return *app_; }
  JobState state() const { return state_; }
  const std::vector<std::size_t>& node_ids() const { return node_ids_; }

  /// Transitions kQueued -> kRunning on the given nodes.
  void start(double now, std::vector<std::size_t> node_ids);

  /// Records one control interval: `min_perf` is the slowest node's
  /// performance fraction (the rank that gates progress), `job_ips` the
  /// measured aggregate IPS, `cap_w` the per-node cap that was applied.
  void record_interval(double dt, double min_perf, double job_ips, double cap_w);

  /// True once accumulated progress covers the reference runtime.
  bool work_complete() const { return progress_s_ >= spec_.runtime_ref_s; }

  /// Transitions kRunning -> kFinished (engine calls after work_complete()).
  void finish(double now);

  /// Transitions kQueued|kRunning -> kCancelled (controller-initiated kill;
  /// the caller releases any held nodes first).
  void cancel(double now);

  /// Transitions kRunning -> kQueued, discarding all progress: the SLURM
  /// requeue semantics (the job restarts from scratch on its next start).
  /// The caller releases the held nodes first.
  void requeue();

  /// The walltime the scheduler may assume: the user's estimate when the
  /// trace carries one, else the reference runtime (oracle fallback for
  /// estimate-free traces). EASY backfill reserves off this value.
  double walltime_est_s() const {
    return spec_.walltime_est_s > 0.0 ? spec_.walltime_est_s
                                      : spec_.runtime_ref_s;
  }

  /// Application phase index for the *next* interval; phases advance with
  /// job progress (iterations), not wall time, so a throttled job stays in
  /// its phase longer.
  std::size_t current_phase() const;

  double progress_s() const { return progress_s_; }
  double remaining_ref_s() const { return spec_.runtime_ref_s - progress_s_; }
  double start_time_s() const { return start_time_s_; }
  double finish_time_s() const { return finish_time_s_; }
  /// Wall-clock runtime (finish - start); requires kFinished.
  double runtime_s() const;

  /// Remaining node-hours at full power: remaining_ref * nodes / 3600
  /// (the SRN policy's oracle priority key).
  double remaining_node_hours() const;

  /// Daemon resync hook: overwrites the interval-derived runtime state with
  /// absolute values reported by a remote plant (perqd telemetry or a
  /// controller snapshot). Unlike record_interval this does not accumulate,
  /// so a controller-side shadow job stays exact across missed intervals
  /// and restarts. Valid in any state.
  void sync_runtime_state(double progress_s, double last_min_perf,
                          double last_job_ips, double last_cap_w);

  double last_job_ips() const { return last_job_ips_; }
  double last_cap_w() const { return last_cap_w_; }
  double last_min_perf() const { return last_min_perf_; }

 private:
  trace::JobSpec spec_;
  const apps::AppModel* app_;
  JobState state_ = JobState::kQueued;
  std::vector<std::size_t> node_ids_;
  double progress_s_ = 0.0;
  double start_time_s_ = -1.0;
  double finish_time_s_ = -1.0;
  double last_job_ips_ = 0.0;
  double last_cap_w_ = 0.0;
  double last_min_perf_ = 1.0;
};

}  // namespace perq::sched
