// SchedCtl: the controller layer over the FCFS+backfill core, modeled on
// the slurmctld job/partition managers.
//
// SchedCtl owns the jobs of an experiment and drives their lifecycle
//
//   submit -> (pending) -> eligible -> running -> finished
//                |             |          |-> cancelled
//                |             |-> cancelled
//                |-> cancelled          |-> requeued -> eligible -> ...
//
// through named partitions (partition.hpp). A submission is validated
// against its partition's admission limits, waits in the submit queue until
// its submit time is reached (arrival model), then queues on the
// partition's own FCFS/EASY-backfill scheduler. Placement passes serve
// partitions in descending priority order against the shared cluster
// free-list, each capped by its partition's concurrent-node ceiling.
//
// Every lifecycle transition fires the event hook -- the seam the durable
// accounting store (src/acct) records through, kept as a callback so the
// controller has no dependency on the accounting layer (the slurmctld /
// slurmdbd split).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/app_model.hpp"
#include "sched/partition.hpp"
#include "sched/scheduler.hpp"
#include "sim/cluster.hpp"
#include "trace/trace.hpp"

namespace perq::sched {

/// Lifecycle transitions surfaced to the event hook.
enum class JobEvent {
  kSubmitted,  ///< accepted into the submit queue
  kEligible,   ///< submit time reached; queued on the partition scheduler
  kStarted,    ///< placed on nodes
  kFinished,   ///< work complete
  kCancelled,  ///< killed (queued or running)
  kRequeued,   ///< evicted and returned to the partition queue
};

std::string to_string(JobEvent e);

/// Controller-side record of one job (what slurmctld tracks per job).
struct JobRecord {
  Job* job = nullptr;
  std::uint32_t partition = 0;   ///< index into SchedCtl::partitions()
  double submit_s = 0.0;
  double eligible_s = -1.0;
  double start_s = -1.0;
  double end_s = -1.0;           ///< finish or cancel time
  std::uint32_t requeues = 0;
};

struct SchedCtlConfig {
  /// Partition table; empty = one default "batch" partition over the whole
  /// machine. Order breaks priority ties.
  std::vector<PartitionConfig> partitions;
  std::size_t backfill_window = 64;
  BackfillMode backfill_mode = BackfillMode::kEasy;
  std::size_t max_head_bypass = 0;  ///< starvation guard (see scheduler.hpp)
};

class SchedCtl {
 public:
  using EventHook = std::function<void(JobEvent, const JobRecord&)>;

  /// `machine_nodes` sizes the partition defaults (usually cluster.size()).
  SchedCtl(SchedCtlConfig cfg, std::size_t machine_nodes);

  /// Installs the lifecycle hook (replaces any previous one).
  void set_event_hook(EventHook hook) { hook_ = std::move(hook); }

  const std::vector<Partition>& partitions() const { return partitions_; }
  Partition& partition(std::size_t i) { return partitions_[i]; }

  /// Index of the named partition ("" = the default, index 0).
  std::size_t partition_index(const std::string& name) const;

  /// Submits one job into `partition_name`, validating against the
  /// partition's admission limits. The job object is owned by SchedCtl and
  /// stays pinned for the controller's lifetime. `spec.submit_time_s`
  /// gates eligibility. Returns kOk and fires kSubmitted on acceptance.
  AdmitResult submit(const trace::JobSpec& spec, const apps::AppModel* app,
                     const std::string& partition_name = "");

  /// Earliest submit time still waiting in the submit queue (infinity when
  /// none) -- the replay loop's next-arrival event.
  double next_submit_time() const;

  /// Releases due submissions to their partition queues and runs one
  /// placement pass (partitions in descending priority) against `cluster`.
  /// Returns the jobs started this pass.
  std::vector<Job*> schedule_pass(sim::Cluster& cluster, double now);

  /// Departure: the caller determined `job`'s work is complete. Releases
  /// its nodes and retires it.
  void complete(Job* job, sim::Cluster& cluster, double now);

  /// Cancels a job in any live state (pending, eligible, or running);
  /// returns false when the job is unknown or already ended.
  bool cancel(int job_id, sim::Cluster& cluster, double now);

  /// Evicts a running job and returns it to the back of its partition
  /// queue, discarding progress (SLURM requeue). False when not running.
  bool requeue(int job_id, sim::Cluster& cluster, double now);

  const JobRecord* record(int job_id) const;
  Job* job(int job_id);

  std::size_t submitted() const { return records_.size(); }
  std::size_t pending() const { return pending_.size(); }
  std::size_t running() const { return running_count_; }
  std::size_t finished() const { return finished_count_; }
  std::size_t cancelled() const { return cancelled_count_; }

  /// Jobs queued (eligible, not yet placed) across all partitions.
  std::size_t queued() const;

 private:
  void fire(JobEvent e, const JobRecord& r) {
    if (hook_) hook_(e, r);
  }
  JobRecord* find(int job_id);

  SchedCtlConfig cfg_;
  std::vector<Partition> partitions_;
  std::vector<std::size_t> priority_order_;  ///< partition indices, desc priority
  std::deque<Job> jobs_;                     ///< owning storage, pointer-stable
  std::deque<JobRecord> records_;            ///< parallel to jobs_
  std::unordered_map<int, std::size_t> index_by_id_;
  /// Submit queue: (submit_time, record index), earliest first.
  using PendingEntry = std::pair<double, std::size_t>;
  std::priority_queue<PendingEntry, std::vector<PendingEntry>,
                      std::greater<PendingEntry>>
      pending_;
  EventHook hook_;
  std::size_t running_count_ = 0;
  std::size_t finished_count_ = 0;
  std::size_t cancelled_count_ = 0;
};

}  // namespace perq::sched
