// FCFS scheduler with backfilling (paper Sec. 3 methodology: "First-Come-
// First-Serve (FCFS) with back-filling job scheduling, while making sure
// that there is always a job available to run at the head of the queue").
//
// Two backfill flavors are provided:
//  * kAggressive -- first-fit over a bounded lookahead window: any later job
//    that fits the free nodes starts immediately. Maximum utilization, can
//    starve the head indefinitely -- unless the head-bypass guard below is
//    armed.
//  * kEasy -- EASY backfilling: the blocked head gets a reservation at the
//    earliest time enough nodes free up (per the running jobs' *walltime
//    estimates*); later jobs may only start if they do not delay that
//    reservation.
// Reservations and backfill windows are computed from Job::walltime_est_s()
// -- the user's (inflated) estimate when the trace carries one, the true
// runtime otherwise. Real schedulers never see true runtimes.
//
// All power-provisioning policies in the evaluation share one scheduler
// configuration, so throughput differences come from power allocation alone.
#pragma once

#include <deque>
#include <limits>
#include <vector>

#include "sched/job.hpp"
#include "sim/cluster.hpp"

namespace perq::sched {

enum class BackfillMode { kAggressive, kEasy };

class Scheduler {
 public:
  /// `backfill_window`: how many queued jobs past the head are examined for
  /// backfill each scheduling pass (0 = pure FCFS).
  /// `max_head_bypass`: starvation guard for kAggressive -- after this many
  /// consecutive passes in which the blocked head was bypassed by at least
  /// one backfilled job, backfill is suspended until the head starts.
  /// 0 = unlimited bypassing (the historical behavior).
  explicit Scheduler(std::size_t backfill_window = 64,
                     BackfillMode mode = BackfillMode::kAggressive,
                     std::size_t max_head_bypass = 0);

  BackfillMode mode() const { return mode_; }

  /// Appends a job (non-owning; jobs outlive the scheduler pass).
  void enqueue(Job* job);

  /// Removes a queued job (cancel path). Returns false when not queued here.
  bool remove(const Job* job);

  std::size_t queued_count() const { return queue_.size(); }
  bool queue_empty() const { return queue_.empty(); }
  const Job* head() const { return queue_.empty() ? nullptr : queue_.front(); }

  /// Starts as many jobs as fit on the cluster's free nodes: first the
  /// FCFS prefix, then backfill within the lookahead window. Returns the
  /// jobs started this pass. In kEasy mode, `running` (the currently
  /// executing jobs) is required to compute the head's reservation; in
  /// kAggressive mode it is ignored. `node_limit` caps how many nodes this
  /// pass may allocate in total (a partition's free headroom); the default
  /// is unlimited.
  std::vector<Job*> schedule(
      sim::Cluster& cluster, double now,
      const std::vector<Job*>* running = nullptr,
      std::size_t node_limit = std::numeric_limits<std::size_t>::max());

  /// The head job's reservation time computed on the last kEasy pass where
  /// the head was blocked (negative when not applicable). Exposed for tests
  /// and diagnostics.
  double last_shadow_time() const { return last_shadow_time_; }

  /// Consecutive passes the current blocked head has been bypassed by
  /// backfill (resets when the head starts or changes).
  std::size_t head_bypass_passes() const { return head_bypass_; }

  /// True when the starvation guard suppressed backfill on the last pass.
  bool backfill_suspended() const { return backfill_suspended_; }

 private:
  std::size_t backfill_window_;
  BackfillMode mode_;
  std::size_t max_head_bypass_;
  double last_shadow_time_ = -1.0;
  std::size_t head_bypass_ = 0;
  const Job* bypassed_head_ = nullptr;
  bool backfill_suspended_ = false;
  std::deque<Job*> queue_;
};

}  // namespace perq::sched
