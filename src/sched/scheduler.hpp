// FCFS scheduler with backfilling (paper Sec. 3 methodology: "First-Come-
// First-Serve (FCFS) with back-filling job scheduling, while making sure
// that there is always a job available to run at the head of the queue").
//
// Two backfill flavors are provided:
//  * kAggressive -- first-fit over a bounded lookahead window: any later job
//    that fits the free nodes starts immediately. Maximum utilization, can
//    starve the head indefinitely.
//  * kEasy -- EASY backfilling: the blocked head gets a reservation at the
//    earliest time enough nodes free up (per the running jobs' runtime
//    estimates); later jobs may only start if they do not delay that
//    reservation.
// All power-provisioning policies in the evaluation share one scheduler
// configuration, so throughput differences come from power allocation alone.
#pragma once

#include <deque>
#include <vector>

#include "sched/job.hpp"
#include "sim/cluster.hpp"

namespace perq::sched {

enum class BackfillMode { kAggressive, kEasy };

class Scheduler {
 public:
  /// `backfill_window`: how many queued jobs past the head are examined for
  /// backfill each scheduling pass (0 = pure FCFS).
  explicit Scheduler(std::size_t backfill_window = 64,
                     BackfillMode mode = BackfillMode::kAggressive);

  BackfillMode mode() const { return mode_; }

  /// Appends a job (non-owning; jobs outlive the scheduler pass).
  void enqueue(Job* job);

  std::size_t queued_count() const { return queue_.size(); }
  bool queue_empty() const { return queue_.empty(); }

  /// Starts as many jobs as fit on the cluster's free nodes: first the
  /// FCFS prefix, then backfill within the lookahead window. Returns the
  /// jobs started this pass. In kEasy mode, `running` (the currently
  /// executing jobs) is required to compute the head's reservation; in
  /// kAggressive mode it is ignored.
  std::vector<Job*> schedule(sim::Cluster& cluster, double now,
                             const std::vector<Job*>* running = nullptr);

  /// The head job's reservation time computed on the last kEasy pass where
  /// the head was blocked (negative when not applicable). Exposed for tests
  /// and diagnostics.
  double last_shadow_time() const { return last_shadow_time_; }

 private:
  std::size_t backfill_window_;
  BackfillMode mode_;
  double last_shadow_time_ = -1.0;
  std::deque<Job*> queue_;
};

}  // namespace perq::sched
