# Empty dependencies file for bench_fig9_control_interval.
# This may be replaced when dependencies are built.
