file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_control_interval.dir/bench_fig9_control_interval.cpp.o"
  "CMakeFiles/bench_fig9_control_interval.dir/bench_fig9_control_interval.cpp.o.d"
  "bench_fig9_control_interval"
  "bench_fig9_control_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_control_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
