# Empty compiler generated dependencies file for bench_model_analysis.
# This may be replaced when dependencies are built.
