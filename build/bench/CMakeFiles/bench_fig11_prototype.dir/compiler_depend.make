# Empty compiler generated dependencies file for bench_fig11_prototype.
# This may be replaced when dependencies are built.
