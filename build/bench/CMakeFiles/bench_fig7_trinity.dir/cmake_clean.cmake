file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_trinity.dir/bench_fig7_trinity.cpp.o"
  "CMakeFiles/bench_fig7_trinity.dir/bench_fig7_trinity.cpp.o.d"
  "bench_fig7_trinity"
  "bench_fig7_trinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_trinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
