# Empty dependencies file for bench_fig8_tracking.
# This may be replaced when dependencies are built.
