# Empty compiler generated dependencies file for perq_benchlib.
# This may be replaced when dependencies are built.
