file(REMOVE_RECURSE
  "CMakeFiles/perq_benchlib.dir/common.cpp.o"
  "CMakeFiles/perq_benchlib.dir/common.cpp.o.d"
  "libperq_benchlib.a"
  "libperq_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
