file(REMOVE_RECURSE
  "libperq_benchlib.a"
)
