file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_app_power.dir/bench_table1_app_power.cpp.o"
  "CMakeFiles/bench_table1_app_power.dir/bench_table1_app_power.cpp.o.d"
  "bench_table1_app_power"
  "bench_table1_app_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_app_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
