# Empty dependencies file for bench_table1_app_power.
# This may be replaced when dependencies are built.
