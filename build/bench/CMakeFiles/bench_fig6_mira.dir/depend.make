# Empty dependencies file for bench_fig6_mira.
# This may be replaced when dependencies are built.
