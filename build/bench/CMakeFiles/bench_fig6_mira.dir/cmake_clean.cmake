file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_mira.dir/bench_fig6_mira.cpp.o"
  "CMakeFiles/bench_fig6_mira.dir/bench_fig6_mira.cpp.o.d"
  "bench_fig6_mira"
  "bench_fig6_mira.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mira.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
