file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_params.dir/bench_fig10_params.cpp.o"
  "CMakeFiles/bench_fig10_params.dir/bench_fig10_params.cpp.o.d"
  "bench_fig10_params"
  "bench_fig10_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
