# Empty compiler generated dependencies file for bench_fig10_params.
# This may be replaced when dependencies are built.
