
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_sensitivity.cpp" "bench/CMakeFiles/bench_fig3_sensitivity.dir/bench_fig3_sensitivity.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_sensitivity.dir/bench_fig3_sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/perq_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/perq_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/perq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/perq_control.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/perq_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/perq_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/perq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/perq_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sysid/CMakeFiles/perq_sysid.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/perq_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/perq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/perq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
