# Empty compiler generated dependencies file for bench_fig12_handoff.
# This may be replaced when dependencies are built.
