file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_handoff.dir/bench_fig12_handoff.cpp.o"
  "CMakeFiles/bench_fig12_handoff.dir/bench_fig12_handoff.cpp.o.d"
  "bench_fig12_handoff"
  "bench_fig12_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
