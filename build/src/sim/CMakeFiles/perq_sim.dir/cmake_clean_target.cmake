file(REMOVE_RECURSE
  "libperq_sim.a"
)
