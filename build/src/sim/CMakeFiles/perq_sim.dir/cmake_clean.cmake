file(REMOVE_RECURSE
  "CMakeFiles/perq_sim.dir/cluster.cpp.o"
  "CMakeFiles/perq_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/perq_sim.dir/node.cpp.o"
  "CMakeFiles/perq_sim.dir/node.cpp.o.d"
  "CMakeFiles/perq_sim.dir/rapl.cpp.o"
  "CMakeFiles/perq_sim.dir/rapl.cpp.o.d"
  "libperq_sim.a"
  "libperq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
