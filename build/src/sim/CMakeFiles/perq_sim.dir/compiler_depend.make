# Empty compiler generated dependencies file for perq_sim.
# This may be replaced when dependencies are built.
