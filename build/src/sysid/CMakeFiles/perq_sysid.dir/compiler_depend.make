# Empty compiler generated dependencies file for perq_sysid.
# This may be replaced when dependencies are built.
