
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysid/analysis.cpp" "src/sysid/CMakeFiles/perq_sysid.dir/analysis.cpp.o" "gcc" "src/sysid/CMakeFiles/perq_sysid.dir/analysis.cpp.o.d"
  "/root/repo/src/sysid/arx.cpp" "src/sysid/CMakeFiles/perq_sysid.dir/arx.cpp.o" "gcc" "src/sysid/CMakeFiles/perq_sysid.dir/arx.cpp.o.d"
  "/root/repo/src/sysid/identify.cpp" "src/sysid/CMakeFiles/perq_sysid.dir/identify.cpp.o" "gcc" "src/sysid/CMakeFiles/perq_sysid.dir/identify.cpp.o.d"
  "/root/repo/src/sysid/statespace.cpp" "src/sysid/CMakeFiles/perq_sysid.dir/statespace.cpp.o" "gcc" "src/sysid/CMakeFiles/perq_sysid.dir/statespace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/perq_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/perq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
