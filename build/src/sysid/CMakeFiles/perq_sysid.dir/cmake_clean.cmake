file(REMOVE_RECURSE
  "CMakeFiles/perq_sysid.dir/analysis.cpp.o"
  "CMakeFiles/perq_sysid.dir/analysis.cpp.o.d"
  "CMakeFiles/perq_sysid.dir/arx.cpp.o"
  "CMakeFiles/perq_sysid.dir/arx.cpp.o.d"
  "CMakeFiles/perq_sysid.dir/identify.cpp.o"
  "CMakeFiles/perq_sysid.dir/identify.cpp.o.d"
  "CMakeFiles/perq_sysid.dir/statespace.cpp.o"
  "CMakeFiles/perq_sysid.dir/statespace.cpp.o.d"
  "libperq_sysid.a"
  "libperq_sysid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_sysid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
