file(REMOVE_RECURSE
  "libperq_sysid.a"
)
