# Empty dependencies file for perq_qp.
# This may be replaced when dependencies are built.
