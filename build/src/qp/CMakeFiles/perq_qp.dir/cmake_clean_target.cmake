file(REMOVE_RECURSE
  "libperq_qp.a"
)
