file(REMOVE_RECURSE
  "CMakeFiles/perq_qp.dir/active_set.cpp.o"
  "CMakeFiles/perq_qp.dir/active_set.cpp.o.d"
  "CMakeFiles/perq_qp.dir/problem.cpp.o"
  "CMakeFiles/perq_qp.dir/problem.cpp.o.d"
  "CMakeFiles/perq_qp.dir/projected_gradient.cpp.o"
  "CMakeFiles/perq_qp.dir/projected_gradient.cpp.o.d"
  "CMakeFiles/perq_qp.dir/projection.cpp.o"
  "CMakeFiles/perq_qp.dir/projection.cpp.o.d"
  "libperq_qp.a"
  "libperq_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
