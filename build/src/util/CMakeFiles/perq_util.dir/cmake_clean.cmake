file(REMOVE_RECURSE
  "CMakeFiles/perq_util.dir/csv.cpp.o"
  "CMakeFiles/perq_util.dir/csv.cpp.o.d"
  "CMakeFiles/perq_util.dir/rng.cpp.o"
  "CMakeFiles/perq_util.dir/rng.cpp.o.d"
  "CMakeFiles/perq_util.dir/stats.cpp.o"
  "CMakeFiles/perq_util.dir/stats.cpp.o.d"
  "libperq_util.a"
  "libperq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
