file(REMOVE_RECURSE
  "libperq_util.a"
)
