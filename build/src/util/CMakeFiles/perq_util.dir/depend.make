# Empty dependencies file for perq_util.
# This may be replaced when dependencies are built.
