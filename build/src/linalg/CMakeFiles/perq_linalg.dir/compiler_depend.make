# Empty compiler generated dependencies file for perq_linalg.
# This may be replaced when dependencies are built.
