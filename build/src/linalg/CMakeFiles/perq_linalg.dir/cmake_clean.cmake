file(REMOVE_RECURSE
  "CMakeFiles/perq_linalg.dir/decompose.cpp.o"
  "CMakeFiles/perq_linalg.dir/decompose.cpp.o.d"
  "CMakeFiles/perq_linalg.dir/eigen.cpp.o"
  "CMakeFiles/perq_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/perq_linalg.dir/matrix.cpp.o"
  "CMakeFiles/perq_linalg.dir/matrix.cpp.o.d"
  "libperq_linalg.a"
  "libperq_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
