file(REMOVE_RECURSE
  "libperq_linalg.a"
)
