# Empty dependencies file for perq_core.
# This may be replaced when dependencies are built.
