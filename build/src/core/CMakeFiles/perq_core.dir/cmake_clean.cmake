file(REMOVE_RECURSE
  "CMakeFiles/perq_core.dir/engine.cpp.o"
  "CMakeFiles/perq_core.dir/engine.cpp.o.d"
  "CMakeFiles/perq_core.dir/node_model.cpp.o"
  "CMakeFiles/perq_core.dir/node_model.cpp.o.d"
  "CMakeFiles/perq_core.dir/perq_policy.cpp.o"
  "CMakeFiles/perq_core.dir/perq_policy.cpp.o.d"
  "libperq_core.a"
  "libperq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
