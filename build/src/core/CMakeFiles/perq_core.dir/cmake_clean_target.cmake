file(REMOVE_RECURSE
  "libperq_core.a"
)
