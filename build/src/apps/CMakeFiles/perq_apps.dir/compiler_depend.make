# Empty compiler generated dependencies file for perq_apps.
# This may be replaced when dependencies are built.
