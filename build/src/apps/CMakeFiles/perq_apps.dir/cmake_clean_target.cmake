file(REMOVE_RECURSE
  "libperq_apps.a"
)
