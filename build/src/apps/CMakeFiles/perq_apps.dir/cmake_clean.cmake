file(REMOVE_RECURSE
  "CMakeFiles/perq_apps.dir/app_model.cpp.o"
  "CMakeFiles/perq_apps.dir/app_model.cpp.o.d"
  "CMakeFiles/perq_apps.dir/catalog.cpp.o"
  "CMakeFiles/perq_apps.dir/catalog.cpp.o.d"
  "libperq_apps.a"
  "libperq_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
