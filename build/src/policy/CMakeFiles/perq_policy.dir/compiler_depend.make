# Empty compiler generated dependencies file for perq_policy.
# This may be replaced when dependencies are built.
