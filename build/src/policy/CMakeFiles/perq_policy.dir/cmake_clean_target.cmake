file(REMOVE_RECURSE
  "libperq_policy.a"
)
