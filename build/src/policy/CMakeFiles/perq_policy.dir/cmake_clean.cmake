file(REMOVE_RECURSE
  "CMakeFiles/perq_policy.dir/policy.cpp.o"
  "CMakeFiles/perq_policy.dir/policy.cpp.o.d"
  "libperq_policy.a"
  "libperq_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
