# Empty compiler generated dependencies file for perq_metrics.
# This may be replaced when dependencies are built.
