file(REMOVE_RECURSE
  "CMakeFiles/perq_metrics.dir/metrics.cpp.o"
  "CMakeFiles/perq_metrics.dir/metrics.cpp.o.d"
  "libperq_metrics.a"
  "libperq_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
