file(REMOVE_RECURSE
  "libperq_metrics.a"
)
