# Empty dependencies file for perq_trace.
# This may be replaced when dependencies are built.
