file(REMOVE_RECURSE
  "CMakeFiles/perq_trace.dir/trace.cpp.o"
  "CMakeFiles/perq_trace.dir/trace.cpp.o.d"
  "libperq_trace.a"
  "libperq_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
