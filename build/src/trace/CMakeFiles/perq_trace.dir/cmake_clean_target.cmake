file(REMOVE_RECURSE
  "libperq_trace.a"
)
