# Empty compiler generated dependencies file for perq_control.
# This may be replaced when dependencies are built.
