file(REMOVE_RECURSE
  "CMakeFiles/perq_control.dir/estimator.cpp.o"
  "CMakeFiles/perq_control.dir/estimator.cpp.o.d"
  "CMakeFiles/perq_control.dir/mpc.cpp.o"
  "CMakeFiles/perq_control.dir/mpc.cpp.o.d"
  "CMakeFiles/perq_control.dir/target_generator.cpp.o"
  "CMakeFiles/perq_control.dir/target_generator.cpp.o.d"
  "libperq_control.a"
  "libperq_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
