file(REMOVE_RECURSE
  "libperq_control.a"
)
