file(REMOVE_RECURSE
  "libperq_sched.a"
)
