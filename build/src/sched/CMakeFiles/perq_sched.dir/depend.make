# Empty dependencies file for perq_sched.
# This may be replaced when dependencies are built.
