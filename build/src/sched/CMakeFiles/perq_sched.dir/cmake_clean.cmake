file(REMOVE_RECURSE
  "CMakeFiles/perq_sched.dir/job.cpp.o"
  "CMakeFiles/perq_sched.dir/job.cpp.o.d"
  "CMakeFiles/perq_sched.dir/scheduler.cpp.o"
  "CMakeFiles/perq_sched.dir/scheduler.cpp.o.d"
  "libperq_sched.a"
  "libperq_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
