
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/job.cpp" "src/sched/CMakeFiles/perq_sched.dir/job.cpp.o" "gcc" "src/sched/CMakeFiles/perq_sched.dir/job.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/perq_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/perq_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/perq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/perq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/perq_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/perq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
