# Empty dependencies file for perq_cli.
# This may be replaced when dependencies are built.
