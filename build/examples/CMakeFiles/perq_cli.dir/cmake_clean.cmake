file(REMOVE_RECURSE
  "CMakeFiles/perq_cli.dir/perq_cli.cpp.o"
  "CMakeFiles/perq_cli.dir/perq_cli.cpp.o.d"
  "perq_cli"
  "perq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
