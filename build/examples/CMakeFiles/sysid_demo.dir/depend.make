# Empty dependencies file for sysid_demo.
# This may be replaced when dependencies are built.
