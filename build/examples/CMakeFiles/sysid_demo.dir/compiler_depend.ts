# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sysid_demo.
