file(REMOVE_RECURSE
  "CMakeFiles/sysid_demo.dir/sysid_demo.cpp.o"
  "CMakeFiles/sysid_demo.dir/sysid_demo.cpp.o.d"
  "sysid_demo"
  "sysid_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysid_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
