file(REMOVE_RECURSE
  "CMakeFiles/cluster_comparison.dir/cluster_comparison.cpp.o"
  "CMakeFiles/cluster_comparison.dir/cluster_comparison.cpp.o.d"
  "cluster_comparison"
  "cluster_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
