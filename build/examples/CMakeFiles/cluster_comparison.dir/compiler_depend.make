# Empty compiler generated dependencies file for cluster_comparison.
# This may be replaced when dependencies are built.
