file(REMOVE_RECURSE
  "CMakeFiles/power_handoff.dir/power_handoff.cpp.o"
  "CMakeFiles/power_handoff.dir/power_handoff.cpp.o.d"
  "power_handoff"
  "power_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
