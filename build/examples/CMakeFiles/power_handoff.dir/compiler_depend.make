# Empty compiler generated dependencies file for power_handoff.
# This may be replaced when dependencies are built.
