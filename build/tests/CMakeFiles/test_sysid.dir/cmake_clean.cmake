file(REMOVE_RECURSE
  "CMakeFiles/test_sysid.dir/sysid/analysis_test.cpp.o"
  "CMakeFiles/test_sysid.dir/sysid/analysis_test.cpp.o.d"
  "CMakeFiles/test_sysid.dir/sysid/arx_test.cpp.o"
  "CMakeFiles/test_sysid.dir/sysid/arx_test.cpp.o.d"
  "CMakeFiles/test_sysid.dir/sysid/identify_test.cpp.o"
  "CMakeFiles/test_sysid.dir/sysid/identify_test.cpp.o.d"
  "CMakeFiles/test_sysid.dir/sysid/statespace_test.cpp.o"
  "CMakeFiles/test_sysid.dir/sysid/statespace_test.cpp.o.d"
  "test_sysid"
  "test_sysid.pdb"
  "test_sysid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
