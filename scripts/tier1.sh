#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite -- twice.
#
# Leg 1 is the plain RelWithDebInfo build. Leg 2 rebuilds everything with
# PERQ_SANITIZE=ON (ASan + UBSan, separate build dir) so the socket and
# event-loop code in src/net + src/daemon is always exercised under the
# sanitizers. Leg 3 is UBSan alone (PERQ_UBSAN=ON, non-recoverable): no
# ASan interceptors, so RelWithDebInfo optimization stays on and UB that
# only optimized code hits still aborts the suite.
#
#   scripts/tier1.sh                        # all legs
#   PERQ_SKIP_SANITIZE=1 scripts/tier1.sh   # plain leg only (quick iteration)
#
# Extra arguments are forwarded to ctest (e.g. scripts/tier1.sh -R Mpc).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ASAN_BUILD_DIR=${ASAN_BUILD_DIR:-build-asan}
UBSAN_BUILD_DIR=${UBSAN_BUILD_DIR:-build-ubsan}

cmake -B "$BUILD_DIR" -S . -DPERQ_SANITIZE=OFF
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

# Chaos leg: the full perqd loop under every fault scenario with fixed
# deterministic seeds. perq_chaos exits non-zero if any run-level safety
# invariant is breached on any tick.
for scenario in drop delay corrupt crash partition mix domain-partition; do
  "$BUILD_DIR"/examples/perq_chaos --scenario "$scenario" --seed 7
  "$BUILD_DIR"/examples/perq_chaos --scenario "$scenario" --seed 1912
done

if [[ "${PERQ_SKIP_SANITIZE:-0}" != "1" ]]; then
  cmake -B "$ASAN_BUILD_DIR" -S . -DPERQ_SANITIZE=ON
  cmake --build "$ASAN_BUILD_DIR" -j
  ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

  cmake -B "$UBSAN_BUILD_DIR" -S . -DPERQ_UBSAN=ON
  cmake --build "$UBSAN_BUILD_DIR" -j
  ctest --test-dir "$UBSAN_BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
fi
