#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite -- twice.
#
# Leg 1 is the plain RelWithDebInfo build. Leg 2 rebuilds everything with
# PERQ_SANITIZE=ON (ASan + UBSan, separate build dir) so the socket and
# event-loop code in src/net + src/daemon is always exercised under the
# sanitizers. Leg 3 is UBSan alone (PERQ_UBSAN=ON, non-recoverable): no
# ASan interceptors, so RelWithDebInfo optimization stays on and UB that
# only optimized code hits still aborts the suite. Leg 4 is TSan
# (PERQ_TSAN=ON) over the threaded subset: the epoll/poll reactor and
# frame I/O (Reactor/Tcp/Daemon tests run a controller thread against the
# main thread), the sharded pump (Shard* tests drain per-shard inboxes on
# ThreadPool workers), plus the other ThreadPool paths
# (MpcController::decide fans out per-job work via parallel_for).
#
# A perf-smoke leg then runs bench_daemon_throughput at na=64 with two
# reactor shards on the plain build and validates the shape of
# BENCH_daemon_throughput.json -- including the sharded rows (per-shard
# CPU, delta hit rate) -- so a regression that breaks the bench binary or
# its schema fails the gate before anyone burns a full sweep on it. A
# replay-smoke leg does the same for perq_replay: 10k jobs through the
# SchedCtl/accounting stack, audit JSON schema-checked, all jobs complete,
# fairness >= 0.5.
#
#   scripts/tier1.sh                        # all legs
#   PERQ_SKIP_SANITIZE=1 scripts/tier1.sh   # plain leg only (quick iteration)
#
# Extra arguments are forwarded to ctest (e.g. scripts/tier1.sh -R Mpc).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ASAN_BUILD_DIR=${ASAN_BUILD_DIR:-build-asan}
UBSAN_BUILD_DIR=${UBSAN_BUILD_DIR:-build-ubsan}
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DPERQ_SANITIZE=OFF
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

# Chaos leg: the full perqd loop under every fault scenario with fixed
# deterministic seeds. perq_chaos exits non-zero if any run-level safety
# invariant is breached on any tick. The failover scenario additionally
# asserts the tight-handover trajectory is bit-identical to a crash-free
# run and that a deposed primary is fenced by epoch. tree-partition runs
# the depth-2 arbiter tree and blacks out one mid's root uplink: the root
# must fence the whole subtree's grant with per-level conservation and
# the tenant SLA invariant checked on every tick.
for scenario in drop delay corrupt crash partition mix domain-partition tree-partition failover; do
  "$BUILD_DIR"/examples/perq_chaos --scenario "$scenario" --seed 7
  "$BUILD_DIR"/examples/perq_chaos --scenario "$scenario" --seed 1912
done

# Failover smoke: the deployable HA path over real TCP. A standby and a
# primary (--replicate-to) serve two paced agents; the primary is killed
# mid-run, the standby must detect the replication silence, promote, pick
# the failed-over agents up, and serve the rest of the run cleanly.
(
  cd "$BUILD_DIR"
  PA=127.0.0.1:7471 PB=127.0.0.1:7472
  rm -f FAILOVER_standby.log FAILOVER_agent.log FAILOVER_primary.log
  trap 'kill -9 $(jobs -p) 2>/dev/null || true' EXIT
  ./examples/perqd --listen "$PB" --standby-of "$PA" --takeover-ms 1500 \
    --wc-nodes 16 > FAILOVER_standby.log 2>&1 &
  STANDBY=$!
  ./examples/perqd --listen "$PA" --replicate-to "$PB" \
    --wc-nodes 16 > FAILOVER_primary.log 2>&1 &
  PRIMARY=$!
  ./examples/perq_agent --connect "$PA" --agents 2 --wc-nodes 16 \
    --hours 0.25 --failover "$PA,$PB" --failover-after 2 \
    --pace-ms 100 > FAILOVER_agent.log 2>&1 &
  AGENT=$!
  sleep 4
  kill -9 "$PRIMARY" 2>/dev/null || true
  if ! wait "$AGENT"; then
    echo "failover smoke: agent failed"; cat FAILOVER_agent.log; exit 1
  fi
  if ! wait "$STANDBY"; then
    echo "failover smoke: standby failed"; cat FAILOVER_standby.log; exit 1
  fi
  grep -q "promoting to primary" FAILOVER_standby.log || {
    echo "failover smoke: standby never promoted"
    cat FAILOVER_standby.log
    exit 1
  }
  echo "failover smoke OK: standby promoted and finished the run"
)

# Perf smoke: the data-plane bench must run and emit a well-formed JSON
# report (schema check only -- thresholds would flake on shared CI hosts).
# --output keeps the smoke artifact inside the build tree; the repo-root
# default path is reserved for real sweeps.
(
  cd "$BUILD_DIR"
  ./bench/bench_daemon_throughput --shards 2 \
    --output BENCH_daemon_throughput.json 64
  python3 - <<'EOF'
import json
import math
with open("BENCH_daemon_throughput.json") as f:
    doc = json.load(f)
assert doc["bench"] == "daemon_throughput", doc
assert isinstance(doc["rows"], list) and doc["rows"], "rows missing/empty"
for row in doc["rows"]:
    assert row["agents"] > 0
    for mode in ("baseline", "optimized"):
        for key in ("ticks_per_s", "loop_ticks_per_s", "ctrl_cpu_ms_per_tick",
                    "allocs_per_tick", "alloc_bytes_per_tick"):
            assert row[mode][key] >= 0.0, (mode, key, row)
    assert row["speedup"] > 0.0
assert doc["speedup_max_na"] > 0.0
sharded = doc["sharded"]
assert isinstance(sharded, list) and sharded, "sharded rows missing/empty"
assert {r["shards"] for r in sharded} == {2}, sharded  # what --shards asked for
for row in sharded:
    assert row["agents"] > 0 and row["shards"] > 0
    assert row["transport"] in ("tcp", "loopback"), row
    for key in ("ticks_per_s", "loop_ticks_per_s", "ctrl_cpu_ms_per_tick",
                "delta_hit_rate", "allocs_per_tick", "alloc_bytes_per_tick"):
        assert math.isfinite(row[key]) and row[key] >= 0.0, (key, row)
    assert 0.0 <= row["delta_hit_rate"] <= 1.0, row
    cpus = row["shard_cpu_ms_per_tick"]
    assert len(cpus) == row["shards"], row
    assert all(math.isfinite(c) and c >= 0.0 for c in cpus), row
print("BENCH_daemon_throughput.json schema OK (incl. sharded rows)")
EOF
)

# Replay smoke: a 10k-job SLURM-shaped trace through the SchedCtl +
# accounting stack. Validates the audit JSON schema and the two run-level
# guarantees the 1M acceptance run relies on: every submitted job
# completes, and the fairness audit clears 0.5 (water-filling should land
# it near 1.0; 0.5 catches an allocator that starves half the machine
# without flaking on workload shape).
(
  cd "$BUILD_DIR"
  ./examples/perq_replay --jobs 10000 --wc-nodes 64 \
    --out REPLAY_audit_smoke.json --csv REPLAY_smoke.csv
  python3 - <<'EOF'
import json
import math
with open("REPLAY_audit_smoke.json") as f:
    doc = json.load(f)
assert doc["bench"] == "replay_audit", doc
assert doc["jobs"] == 10000, doc
assert isinstance(doc["points"], list) and doc["points"], "points missing"
for p in doc["points"]:
    assert p["jobs_completed"] == doc["jobs"], p
    assert p["machine_nodes"] >= doc["worst_case_nodes"], p
    for key in ("jobs_per_day", "makespan_days", "mean_wait_hours",
                "mean_slowdown", "utilization", "total_node_hours",
                "total_energy_mwh"):
        assert math.isfinite(p[key]) and p[key] >= 0.0, (key, p)
    assert 0.5 <= p["fairness_fraction"] <= 1.0, p
    assert 0.0 < p["utilization"] <= 1.0, p
fs = [p["f"] for p in doc["points"]]
assert fs == sorted(fs) and len(set(fs)) == len(fs), fs
print("REPLAY_audit_smoke.json schema OK (%d factors, fairness >= 0.5)"
      % len(fs))
EOF
)

if [[ "${PERQ_SKIP_SANITIZE:-0}" != "1" ]]; then
  cmake -B "$ASAN_BUILD_DIR" -S . -DPERQ_SANITIZE=ON
  cmake --build "$ASAN_BUILD_DIR" -j
  ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

  cmake -B "$UBSAN_BUILD_DIR" -S . -DPERQ_UBSAN=ON
  cmake --build "$UBSAN_BUILD_DIR" -j
  ctest --test-dir "$UBSAN_BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

  # TSan leg: the threaded subset (reactor + frame I/O + ThreadPool users).
  cmake -B "$TSAN_BUILD_DIR" -S . -DPERQ_TSAN=ON
  cmake --build "$TSAN_BUILD_DIR" -j
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R 'Reactor|Shard|ShortWrite|Transport|Tcp|Daemon|FramePool|ZeroAlloc|Mpc|Replay|Replication|Failover|EpochFence|FailSafe|Tree|Tenant' "$@"
fi
