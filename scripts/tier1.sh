#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   scripts/tier1.sh             # RelWithDebInfo (default)
#   PERQ_SANITIZE=ON scripts/tier1.sh   # ASan + UBSan build of everything
#
# Extra arguments are forwarded to ctest (e.g. scripts/tier1.sh -R Mpc).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SANITIZE=${PERQ_SANITIZE:-OFF}

cmake -B "$BUILD_DIR" -S . -DPERQ_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
